(** Tests for the statistics substrate: special functions against known
    values, hypothesis tests against reference results (including the
    paper's own reported statistics), confidence intervals, descriptive
    statistics, and the deterministic RNG. *)

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let close ?(eps = 1e-6) name expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.8f, got %.8f" name expected actual

(* ------------------------------------------------------------------ *)
(* special functions *)

let test_log_gamma () =
  (* Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π *)
  close "lgamma 1" 0.0 (Stats.Special.log_gamma 1.0);
  close "lgamma 2" 0.0 (Stats.Special.log_gamma 2.0);
  close "lgamma 5" (Float.log 24.0) (Stats.Special.log_gamma 5.0);
  close "lgamma 0.5" (0.5 *. Float.log Float.pi) (Stats.Special.log_gamma 0.5);
  close ~eps:1e-5 "lgamma 10.3" 13.4820368 (Stats.Special.log_gamma 10.3)

let test_chi2_cdf () =
  (* reference values from R: pchisq(x, df) *)
  close ~eps:1e-5 "df1 x=3.841" 0.95 (Stats.Special.chi2_cdf ~df:1 3.841459);
  close ~eps:1e-6 "df2 x=5.991" 0.9499996 (Stats.Special.chi2_cdf ~df:2 5.991465);
  close ~eps:1e-6 "df5 x=1" 0.03743423 (Stats.Special.chi2_cdf ~df:5 1.0);
  close "x=0" 0.0 (Stats.Special.chi2_cdf ~df:3 0.0);
  check_bool "monotone" true
    (Stats.Special.chi2_cdf ~df:3 2.0 < Stats.Special.chi2_cdf ~df:3 3.0)

let test_normal_cdf_ppf () =
  close ~eps:1e-4 "cdf 0" 0.5 (Stats.Special.normal_cdf 0.0);
  close ~eps:1e-4 "cdf 1.96" 0.9750 (Stats.Special.normal_cdf 1.96);
  close ~eps:1e-4 "cdf -1.96" 0.0250 (Stats.Special.normal_cdf (-1.96));
  close ~eps:1e-4 "ppf 0.975" 1.959964 (Stats.Special.normal_ppf 0.975);
  close ~eps:1e-4 "ppf 0.5" 0.0 (Stats.Special.normal_ppf 0.5);
  close ~eps:1e-3 "ppf 0.01" (-2.326348) (Stats.Special.normal_ppf 0.01);
  (* ppf inverts cdf *)
  List.iter
    (fun p -> close ~eps:1e-3 "inverse" p (Stats.Special.normal_cdf (Stats.Special.normal_ppf p)))
    [ 0.05; 0.25; 0.5; 0.9; 0.99 ]

(* ------------------------------------------------------------------ *)
(* hypothesis tests *)

let test_chi2_2x2_known () =
  (* 42/50 vs 19/50 — the paper's own localization-rate table.  The
     uncorrected chi-square is 22.236, which the paper rounds to its
     reported chi(1,100) = 22.24. *)
  let r = Stats.Tests.chi2_2x2 ~a:42 ~b:8 ~c:19 ~d:31 in
  close ~eps:1e-2 "statistic" 22.236 r.statistic;
  check_int "df" 1 r.df;
  check_bool "p < 0.001" true (r.p_value < 0.001)

let test_chi2_2x2_null () =
  let r = Stats.Tests.chi2_2x2 ~a:25 ~b:25 ~c:25 ~d:25 in
  close "no effect" 0.0 r.statistic;
  close "p = 1" 1.0 r.p_value

let test_chi2_2x2_degenerate () =
  let r = Stats.Tests.chi2_2x2 ~a:0 ~b:0 ~c:10 ~d:10 in
  close "empty row" 0.0 r.statistic

let test_kruskal_wallis_known () =
  (* R: kruskal.test(list(c(1,2,3,4,5), c(6,7,8,9,10)))
     H = 6.8182, df = 1, p = 0.00902 *)
  let r =
    Stats.Tests.kruskal_wallis
      [ [ 1.; 2.; 3.; 4.; 5. ]; [ 6.; 7.; 8.; 9.; 10. ] ]
  in
  close ~eps:1e-3 "H" 6.8182 r.statistic;
  check_int "df" 1 r.df;
  close ~eps:1e-4 "p" 0.00902 r.p_value

let test_kruskal_wallis_with_ties () =
  (* hand-computed: midranks [1.5;1.5;4;4] vs [4;6.5;6.5;8], raw H =
     4.0833, tie factor 1 - 36/504, corrected H = 4.39744, p = 0.03599 *)
  let r = Stats.Tests.kruskal_wallis [ [ 1.; 1.; 2.; 2. ]; [ 2.; 3.; 3.; 4. ] ] in
  close ~eps:1e-3 "H with ties" 4.39744 r.statistic;
  close ~eps:1e-4 "p" 0.03599 r.p_value

let test_kruskal_wallis_identical_groups () =
  let r = Stats.Tests.kruskal_wallis [ [ 5.; 5.; 5. ]; [ 5.; 5.; 5. ] ] in
  check_bool "no signal" true (r.statistic <= 1e-9 || Float.is_nan r.statistic = false)

(* ------------------------------------------------------------------ *)
(* confidence intervals *)

let test_wilson_known () =
  (* the paper: 42/50 = 84%, CI = [71%, 93%] (Wilson, 95%) *)
  let ci = Stats.Ci.wilson ~successes:42 ~trials:50 () in
  check_bool "lo ≈ 0.71" true (Float.abs (ci.lo -. 0.71) < 0.015);
  check_bool "hi ≈ 0.93" true (Float.abs (ci.hi -. 0.925) < 0.015);
  (* 19/50 = 38%, CI = [25%, 53%] *)
  let ci2 = Stats.Ci.wilson ~successes:19 ~trials:50 () in
  check_bool "lo2 ≈ 0.25" true (Float.abs (ci2.lo -. 0.255) < 0.015);
  check_bool "hi2 ≈ 0.52" true (Float.abs (ci2.hi -. 0.525) < 0.015)

let test_wilson_edge_cases () =
  let all = Stats.Ci.wilson ~successes:10 ~trials:10 () in
  check_bool "hi = 1 at p=1" true (all.hi >= 0.999);
  check_bool "lo < 1" true (all.lo < 1.0);
  let none = Stats.Ci.wilson ~successes:0 ~trials:10 () in
  check_bool "lo = 0 at p=0" true (none.lo <= 0.001);
  check_bool "hi > 0" true (none.hi > 0.0)

let test_bootstrap_median () =
  let rng = Stats.Rng.create ~seed:7 in
  let sample = List.init 101 (fun i -> float_of_int i) in
  let ci = Stats.Ci.bootstrap_median ~rng sample in
  check_bool "covers the median" true (ci.lo <= 50.0 && 50.0 <= ci.hi);
  check_bool "nontrivial width" true (ci.hi -. ci.lo > 0.0)

(* ------------------------------------------------------------------ *)
(* descriptive *)

let test_descriptive_basics () =
  close "mean" 2.5 (Stats.Descriptive.mean [ 1.; 2.; 3.; 4. ]);
  close "median even" 2.5 (Stats.Descriptive.median [ 1.; 2.; 3.; 4. ]);
  close "median odd" 3.0 (Stats.Descriptive.median [ 5.; 1.; 3. ]);
  close "variance" (5.0 /. 3.0) (Stats.Descriptive.variance [ 1.; 2.; 3.; 4. ]);
  close "q0" 1.0 (Stats.Descriptive.quantile 0.0 [ 1.; 2.; 3. ]);
  close "q1" 3.0 (Stats.Descriptive.quantile 1.0 [ 1.; 2.; 3. ]);
  close "q interp" 1.5 (Stats.Descriptive.quantile 0.25 [ 1.; 2.; 3. ]);
  let lo, hi = Stats.Descriptive.min_max [ 3.; 1.; 2. ] in
  close "min" 1.0 lo;
  close "max" 3.0 hi

let test_ranks_with_ties () =
  let r = Stats.Descriptive.ranks [ 10.; 20.; 20.; 30. ] in
  check_bool "midranks" true (r = [ 1.0; 2.5; 2.5; 4.0 ]);
  let r2 = Stats.Descriptive.ranks [ 5.; 5.; 5. ] in
  check_bool "all tied" true (r2 = [ 2.0; 2.0; 2.0 ])

let test_correlation () =
  close "perfect" 1.0 (Stats.Descriptive.correlation [ 1.; 2.; 3. ] [ 2.; 4.; 6. ]);
  close "anti" (-1.0) (Stats.Descriptive.correlation [ 1.; 2.; 3. ] [ 3.; 2.; 1. ]);
  close "mad" 1.0 (Stats.Descriptive.mean_absolute_deviation [ 1.; 2. ] [ 2.; 3. ])

(* ------------------------------------------------------------------ *)
(* rng *)

let test_rng_deterministic () =
  let a = Stats.Rng.create ~seed:99 and b = Stats.Rng.create ~seed:99 in
  let xs = List.init 20 (fun _ -> Stats.Rng.float a) in
  let ys = List.init 20 (fun _ -> Stats.Rng.float b) in
  check_bool "same stream" true (xs = ys);
  let c = Stats.Rng.create ~seed:100 in
  let zs = List.init 20 (fun _ -> Stats.Rng.float c) in
  check_bool "different seed differs" false (xs = zs)

let test_rng_ranges () =
  let rng = Stats.Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let f = Stats.Rng.float rng in
    check_bool "float in [0,1)" true (f >= 0.0 && f < 1.0);
    let i = Stats.Rng.int rng 7 in
    check_bool "int in range" true (i >= 0 && i < 7)
  done

let test_rng_distributions_sane () =
  let rng = Stats.Rng.create ~seed:11 in
  let n = 20000 in
  let normals = List.init n (fun _ -> Stats.Rng.normal rng) in
  close ~eps:0.03 "normal mean ≈ 0" 0.0 (Stats.Descriptive.mean normals);
  close ~eps:0.05 "normal sd ≈ 1" 1.0 (Stats.Descriptive.stddev normals);
  let bern = List.init n (fun _ -> if Stats.Rng.bernoulli rng 0.3 then 1.0 else 0.0) in
  close ~eps:0.02 "bernoulli rate" 0.3 (Stats.Descriptive.mean bern)

let test_rng_shuffle_sample () =
  let rng = Stats.Rng.create ~seed:5 in
  let arr = Array.init 10 Fun.id in
  Stats.Rng.shuffle rng arr;
  check_bool "permutation" true
    (List.sort compare (Array.to_list arr) = List.init 10 Fun.id);
  let s = Stats.Rng.sample rng 4 (List.init 10 Fun.id) in
  check_int "sample size" 4 (List.length s);
  check_bool "distinct" true (List.sort_uniq compare s = List.sort compare s)

let test_rng_split_independent () =
  let rng = Stats.Rng.create ~seed:21 in
  let a = Stats.Rng.split rng in
  let b = Stats.Rng.split rng in
  let xs = List.init 10 (fun _ -> Stats.Rng.float a) in
  let ys = List.init 10 (fun _ -> Stats.Rng.float b) in
  check_bool "split streams differ" false (xs = ys)

(* ------------------------------------------------------------------ *)
(* stratified permutation test (the GLMM analog) *)

let test_permutation_detects_effect () =
  let rng = Stats.Rng.create ~seed:31 in
  (* 20 participants, treatment always succeeds, control always fails *)
  let strata =
    List.init 20 (fun _ -> [ (true, true); (true, true); (false, false); (false, false) ])
  in
  let r = Stats.Permutation.test ~iterations:2000 ~rng strata in
  close "observed = 1" 1.0 r.observed;
  check_bool "clearly significant" true (r.p_value < 0.01)

let test_permutation_null () =
  let rng = Stats.Rng.create ~seed:32 in
  (* outcome independent of condition: within each participant, one
     success per condition *)
  let strata =
    List.init 20 (fun _ -> [ (true, true); (true, false); (false, true); (false, false) ])
  in
  let r = Stats.Permutation.test ~iterations:2000 ~rng strata in
  close "no observed effect" 0.0 r.observed;
  check_bool "not significant" true (r.p_value > 0.5)

let test_permutation_respects_strata () =
  let rng = Stats.Rng.create ~seed:33 in
  (* participant-skill confound: half the participants succeed at
     everything, half at nothing.  A stratified test must see NO
     condition effect. *)
  let strata =
    List.init 10 (fun i ->
        let ok = i < 5 in
        [ (true, ok); (true, ok); (false, ok); (false, ok) ])
  in
  let r = Stats.Permutation.test ~iterations:2000 ~rng strata in
  close "confound removed" 0.0 r.observed;
  check_bool "not significant" true (r.p_value > 0.5)

(* property: quantile is monotone in q *)
let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile monotone in q" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (float_range (-100.) 100.))
    (fun xs ->
      let q1 = Stats.Descriptive.quantile 0.25 xs in
      let q2 = Stats.Descriptive.quantile 0.5 xs in
      let q3 = Stats.Descriptive.quantile 0.75 xs in
      q1 <= q2 && q2 <= q3)

let prop_wilson_contains_point =
  QCheck.Test.make ~name:"wilson CI contains the point estimate" ~count:200
    QCheck.(pair (int_range 0 50) (int_range 1 50))
    (fun (s, extra) ->
      let trials = s + extra in
      let ci = Stats.Ci.wilson ~successes:s ~trials () in
      let p = float_of_int s /. float_of_int trials in
      ci.lo <= p +. 1e-9 && p -. 1e-9 <= ci.hi)

let prop_ranks_sum =
  QCheck.Test.make ~name:"ranks sum to n(n+1)/2" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (float_range (-10.) 10.))
    (fun xs ->
      let n = List.length xs in
      let sum = List.fold_left ( +. ) 0.0 (Stats.Descriptive.ranks xs) in
      Float.abs (sum -. (float_of_int (n * (n + 1)) /. 2.0)) < 1e-6)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_quantile_monotone; prop_wilson_contains_point; prop_ranks_sum ]

let () =
  Alcotest.run "stats"
    [
      ( "special",
        [
          Alcotest.test_case "log_gamma" `Quick test_log_gamma;
          Alcotest.test_case "chi2 cdf" `Quick test_chi2_cdf;
          Alcotest.test_case "normal cdf/ppf" `Quick test_normal_cdf_ppf;
        ] );
      ( "tests",
        [
          Alcotest.test_case "chi2 2x2 known" `Quick test_chi2_2x2_known;
          Alcotest.test_case "chi2 2x2 null" `Quick test_chi2_2x2_null;
          Alcotest.test_case "chi2 degenerate" `Quick test_chi2_2x2_degenerate;
          Alcotest.test_case "kruskal-wallis known" `Quick test_kruskal_wallis_known;
          Alcotest.test_case "kruskal-wallis ties" `Quick test_kruskal_wallis_with_ties;
          Alcotest.test_case "kruskal-wallis degenerate" `Quick
            test_kruskal_wallis_identical_groups;
        ] );
      ( "permutation",
        [
          Alcotest.test_case "detects effect" `Quick test_permutation_detects_effect;
          Alcotest.test_case "null" `Quick test_permutation_null;
          Alcotest.test_case "stratification" `Quick test_permutation_respects_strata;
        ] );
      ( "ci",
        [
          Alcotest.test_case "wilson (paper values)" `Quick test_wilson_known;
          Alcotest.test_case "wilson edges" `Quick test_wilson_edge_cases;
          Alcotest.test_case "bootstrap median" `Quick test_bootstrap_median;
        ] );
      ( "descriptive",
        [
          Alcotest.test_case "basics" `Quick test_descriptive_basics;
          Alcotest.test_case "ranks with ties" `Quick test_ranks_with_ties;
          Alcotest.test_case "correlation" `Quick test_correlation;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "distributions" `Quick test_rng_distributions_sane;
          Alcotest.test_case "shuffle/sample" `Quick test_rng_shuffle_sample;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
        ] );
      ("properties", qcheck_tests);
    ]
