(** Tests for the rustc-style baseline diagnostics: error codes, chain
    reporting, branch-point stopping, elision, on_unimplemented, and the
    Fig. 12a distance metric. *)

open Trait_lang

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let check_str = Alcotest.check Alcotest.string

let diag_of src =
  let program = Resolve.program_of_string ~file:"t.rs" src in
  let report = Solver.Obligations.solve_program program in
  let r = List.hd (Solver.Obligations.errors report) in
  let tree = Argus.Extract.of_report r in
  (program, tree, Rustc_diag.Diagnostic.of_tree program r.goal tree)

let diag_of_entry id =
  let entry = Option.get (Corpus.Suite.find id) in
  let program, tree = Corpus.Harness.failed_tree entry in
  let goal = List.hd (Program.goals program) in
  (entry, program, tree, Rustc_diag.Diagnostic.of_tree program goal tree)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)

let test_e0277_simple () =
  let _, _, d = diag_of "struct A; trait T {} goal A: T;" in
  check_str "code" "E0277" d.code;
  check_bool "headline" true (contains d.primary "the trait bound `A: T` is not satisfied")

let test_e0271_projection () =
  let _, _, d =
    diag_of
      "struct A; struct B; struct C; trait T { type Out; } impl T for A { type Out = B; \
       } goal <A as T>::Out == C;"
  in
  check_str "code" "E0271" d.code;
  check_bool "type mismatch text" true (contains d.primary "type mismatch resolving")

let test_e0275_overflow () =
  let _, _, d = diag_of Corpus.Motivating.ast_overflow in
  check_str "code" "E0275" d.code;
  check_bool "overflow text" true (contains d.primary "overflow evaluating the requirement")

let test_reports_deepest_on_linear_chain () =
  (* W<V<A>>: T -> V<A>: U -> A: S; the deepest (A: S) is reported *)
  let _, _, d =
    diag_of
      {|
        struct A; struct W<X>; struct V<X>;
        trait T {} trait U {} trait S {}
        impl<X> T for W<X> where X: U {}
        impl<X> U for V<X> where X: S {}
        goal W<V<A>>: T;
      |}
  in
  check_bool "deepest reported" true (contains d.primary "`A: S`");
  check_int "two chain notes" 2 (List.length d.notes)

let test_stops_at_branch_point () =
  (* the Bevy §2.3 behaviour: the diagnostic never descends past the
     IntoSystem branch, so SystemParam is absent *)
  let _, _, _, d = diag_of_entry "bevy-errant-param" in
  let text = Rustc_diag.Diagnostic.to_string d in
  check_bool "mentions IntoSystem" true (contains text "IntoSystem");
  check_bool "does NOT mention SystemParam" false (contains text "SystemParam")

let test_on_unimplemented_header () =
  let _, _, _, d = diag_of_entry "bevy-errant-param" in
  check_bool "custom message used" true
    (contains d.primary "does not describe a valid system configuration")

let test_elision_on_long_chain () =
  let _, _, _, d = diag_of_entry "diesel-missing-join" in
  check_bool "hides requirements" true (d.hidden > 0);
  let text = Rustc_diag.Diagnostic.to_string d in
  check_bool "elision note rendered" true (contains text "redundant requirements hidden");
  (* the hidden count matches the chain arithmetic: total - 4 kept *)
  check_int "hidden = chain - kept" d.hidden (d.hidden + 4 + 1 - 4 - 1)

let test_no_elision_on_short_chain () =
  let _, _, d =
    diag_of
      "struct A; struct W<X>; trait T {} trait U {} impl<X> T for W<X> where X: U {} \
       goal W<A>: T;"
  in
  check_int "nothing hidden" 0 d.hidden

let test_e0283_ambiguity () =
  let _, _, d =
    diag_of "struct A; struct B; trait T {} impl T for A {} impl T for B {} goal _: T;"
  in
  check_str "code" "E0283" d.code;
  check_bool "annotation text" true (contains d.primary "type annotations needed")

let test_span_and_origin () =
  let _, _, d = diag_of {|struct A; trait T {} goal A: T from "the call to f()";|} in
  check_str "origin" "the call to f()" d.origin;
  check_bool "span present" true (not (Span.is_dummy d.span));
  let text = Rustc_diag.Diagnostic.to_string d in
  check_bool "arrow line" true (contains text "--> t.rs")

(* ------------------------------------------------------------------ *)
(* distance metric (Fig. 12a) *)

let test_distance_zero_when_reported_is_root_cause () =
  let entry = Option.get (Corpus.Suite.find "diesel-missing-join") in
  let _, _, tree, d =
    let program, tree = Corpus.Harness.failed_tree entry in
    let goal = List.hd (Program.goals program) in
    (entry, program, tree, Rustc_diag.Diagnostic.of_tree program goal tree)
  in
  let rc = Corpus.Harness.root_cause_pred entry in
  check_bool "distance 0" true
    (Rustc_diag.Diagnostic.distance_to_root_cause tree d ~root_cause:rc = Some 0)

let test_distance_positive_at_branch () =
  let entry, _, tree, d = diag_of_entry "bevy-errant-param" in
  let rc = Corpus.Harness.root_cause_pred entry in
  match Rustc_diag.Diagnostic.distance_to_root_cause tree d ~root_cause:rc with
  | Some dist -> check_bool "needs manual tracing" true (dist >= 2)
  | None -> Alcotest.fail "root cause should be in the tree"

let test_distance_none_for_absent_pred () =
  let _, _, tree, d = diag_of_entry "bevy-errant-param" in
  let absent =
    Predicate.trait_ (Ty.ctor (Path.local [ "Nope" ]) []) (Ty.trait_ref (Path.local [ "Nada" ]))
  in
  check_bool "none" true
    (Rustc_diag.Diagnostic.distance_to_root_cause tree d ~root_cause:absent = None)

(* across the whole suite: the compiler's median distance must be worse
   than inertia's (the paper's Fig. 12a relationship) *)
let test_suite_distances_worse_than_inertia () =
  let distances =
    List.filter_map
      (fun (e : Corpus.Harness.entry) ->
        let program, tree = Corpus.Harness.failed_tree e in
        let goal = List.hd (Program.goals program) in
        let d = Rustc_diag.Diagnostic.of_tree program goal tree in
        Rustc_diag.Diagnostic.distance_to_root_cause tree d
          ~root_cause:(Corpus.Harness.root_cause_pred e))
      Corpus.Suite.entries
  in
  check_int "all 17 have distances" 17 (List.length distances);
  let rustc_median =
    Stats.Descriptive.median (List.map float_of_int distances)
  in
  (* inertia's median rank is 0 (every root cause at the top); rustc's
     median distance must be strictly greater *)
  check_bool "rustc median > 0" true (rustc_median > 0.0)

let () =
  Alcotest.run "rustc_diag"
    [
      ( "codes",
        [
          Alcotest.test_case "E0277" `Quick test_e0277_simple;
          Alcotest.test_case "E0271" `Quick test_e0271_projection;
          Alcotest.test_case "E0275" `Quick test_e0275_overflow;
          Alcotest.test_case "E0283" `Quick test_e0283_ambiguity;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "deepest on linear chain" `Quick
            test_reports_deepest_on_linear_chain;
          Alcotest.test_case "stops at branch point" `Quick test_stops_at_branch_point;
          Alcotest.test_case "on_unimplemented" `Quick test_on_unimplemented_header;
          Alcotest.test_case "elision on long chain" `Quick test_elision_on_long_chain;
          Alcotest.test_case "no elision when short" `Quick test_no_elision_on_short_chain;
          Alcotest.test_case "span and origin" `Quick test_span_and_origin;
        ] );
      ( "distance",
        [
          Alcotest.test_case "zero at root cause" `Quick
            test_distance_zero_when_reported_is_root_cause;
          Alcotest.test_case "positive at branch" `Quick test_distance_positive_at_branch;
          Alcotest.test_case "none when absent" `Quick test_distance_none_for_absent_pred;
          Alcotest.test_case "suite-wide vs inertia" `Quick
            test_suite_distances_worse_than_inertia;
        ] );
    ]
