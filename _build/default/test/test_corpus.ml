(** Tests for the corpus: every suite program must parse, resolve, solve,
    fail with its documented ground-truth root cause among the failing
    leaves, and the libraries themselves must be coherent.  Also the
    headline result (§5.2.2): inertia ranks the root cause at index 0 on
    every suite entry. *)

open Trait_lang

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* generic per-entry invariants *)

let entry_tests =
  List.concat_map
    (fun (e : Corpus.Harness.entry) ->
      [
        Alcotest.test_case (e.id ^ " loads") `Quick (fun () ->
            let program = Corpus.Harness.load e in
            check_bool "has declarations" true (Program.decl_count program > 0);
            check_bool "has a goal" true (Program.goals program <> []));
        Alcotest.test_case (e.id ^ " fails as documented") `Quick (fun () ->
            let _, report = Corpus.Harness.solve e in
            check_bool "is a trait error" true
              (not (Solver.Obligations.all_proved report)));
        Alcotest.test_case (e.id ^ " root cause is a failing leaf") `Quick (fun () ->
            check_bool "leaf" true (Corpus.Harness.root_cause_is_leaf e));
        Alcotest.test_case (e.id ^ " inertia ranks root cause first") `Quick (fun () ->
            let _, tree = Corpus.Harness.failed_tree e in
            let rc = Corpus.Harness.root_cause_pred e in
            check_bool "rank 0" true
              (Argus.Heuristics.rank_of_root_cause Argus.Heuristics.by_inertia tree
                 ~root_cause:rc
              = Some 0));
      ])
    Corpus.Suite.entries

let extras_tests =
  List.filter_map
    (fun (e : Corpus.Harness.entry) ->
      if e.root_cause = "" then
        Some
          (Alcotest.test_case (e.id ^ " type-checks") `Quick (fun () ->
               let _, report = Corpus.Harness.solve e in
               check_bool "all proved" true (Solver.Obligations.all_proved report)))
      else
        Some
          (Alcotest.test_case (e.id ^ " fails with leaf root cause") `Quick (fun () ->
               check_bool "leaf" true (Corpus.Harness.root_cause_is_leaf e))))
    Corpus.Suite.extras

(* ------------------------------------------------------------------ *)
(* library-level invariants *)

let all_sources =
  [
    ("diesel missing_join", Corpus.Diesel_lite.missing_join);
    ("bevy errant_param", Corpus.Bevy_lite.errant_param);
    ("axum bad_return", Corpus.Axum_lite.bad_return);
    ("brew clashing", Corpus.Brew.clashing_recipe);
    ("space raw_payload", Corpus.Space.raw_payload);
  ]

let test_libraries_coherent () =
  (* no overlapping impls in any bundled library *)
  List.iter
    (fun (name, src) ->
      let program = Resolve.program_of_string ~file:"c.rs" src in
      let overlaps = Solver.Coherence.check program in
      Alcotest.check Alcotest.int (name ^ " coherent") 0 (List.length overlaps))
    all_sources

let test_libraries_no_orphans () =
  List.iter
    (fun (name, src) ->
      let program = Resolve.program_of_string ~file:"c.rs" src in
      Alcotest.check Alcotest.int
        (name ^ " orphan-free")
        0
        (List.length (Solver.Coherence.orphan_violations program)))
    all_sources

let test_suite_composition () =
  check_int "seventeen programs (§5.2.1)" 17 Corpus.Suite.size;
  (* real-library and synthetic tasks both present, like the paper's *)
  let real, synth =
    List.partition (fun (e : Corpus.Harness.entry) -> e.kind = Corpus.Harness.Real)
      Corpus.Suite.entries
  in
  check_bool "has real-library tasks" true (List.length real >= 8);
  check_bool "has synthetic tasks" true (List.length synth >= 4);
  (* ids unique *)
  let ids = List.map (fun (e : Corpus.Harness.entry) -> e.id) Corpus.Suite.entries in
  check_int "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids))

let test_failure_mode_coverage () =
  (* the suite covers all three §2 failure modes *)
  let has_code code ids =
    List.exists
      (fun id ->
        let e = Option.get (Corpus.Suite.find id) in
        let program, tree = Corpus.Harness.failed_tree e in
        let goal = List.hd (Program.goals program) in
        (Rustc_diag.Diagnostic.of_tree program goal tree).code = code)
      ids
  in
  check_bool "E0271 (projection mismatch, §2.1)" true
    (has_code "E0271" [ "diesel-missing-join"; "brew-clashing-recipe" ]);
  check_bool "E0275 (overflow, §2.2)" true (has_code "E0275" [ "ast-overflow" ]);
  check_bool "E0277 (unsatisfied bound, §2.3)" true
    (has_code "E0277" [ "bevy-errant-param"; "space-raw-payload" ])

let test_branch_points_exist () =
  (* Bevy-style tasks must actually branch (≥2 failing candidates at some
     node), or the §2.3 phenomenon is not being exercised *)
  List.iter
    (fun id ->
      let e = Option.get (Corpus.Suite.find id) in
      let _, tree = Corpus.Harness.failed_tree e in
      let has_branch =
        Argus.Proof_tree.fold
          (fun acc (n : Argus.Proof_tree.node) ->
            acc
            ||
            match n.kind with
            | Argus.Proof_tree.Goal _ ->
                let failing_cands_with_subs =
                  Argus.Proof_tree.children tree n
                  |> List.filter (fun c ->
                         (not (Argus.Proof_tree.is_goal c))
                         && Argus.Proof_tree.is_failed c
                         && List.exists
                              (fun s ->
                                Argus.Proof_tree.is_goal s && Argus.Proof_tree.is_failed s)
                              (Argus.Proof_tree.children tree c))
                in
                List.length failing_cands_with_subs >= 2
            | _ -> false)
          false tree
      in
      check_bool (id ^ " branches") true has_branch)
    [ "bevy-errant-param"; "space-raw-payload" ]

let test_diesel_chain_is_deep () =
  (* the §2.1 phenomenon needs a chain long enough to trigger elision *)
  let e = Option.get (Corpus.Suite.find "diesel-missing-join") in
  let program, tree = Corpus.Harness.failed_tree e in
  let goal = List.hd (Program.goals program) in
  let d = Rustc_diag.Diagnostic.of_tree program goal tree in
  check_bool "elides requirements" true (d.hidden >= 2)

let test_overflow_task_is_overflow () =
  let e = Option.get (Corpus.Suite.find "ast-overflow") in
  let _, tree = Corpus.Harness.failed_tree e in
  let any_overflow =
    Argus.Proof_tree.fold
      (fun acc (n : Argus.Proof_tree.node) ->
        acc
        || match n.kind with Argus.Proof_tree.Goal g -> g.is_overflow | _ -> false)
      false tree
  in
  check_bool "has overflow node" true any_overflow

let test_root_cause_error_handling () =
  let bogus : Corpus.Harness.entry =
    {
      id = "bogus";
      title = "";
      library = "std";
      kind = Corpus.Harness.Synthetic;
      description = "";
      source = "struct A; trait T {} goal A: T;";
      root_cause = "Unknown: T";
      fix_hint = "";
    }
  in
  Alcotest.check_raises "unresolvable root cause"
    (Corpus.Harness.Corpus_error
       "bogus: root cause does not resolve: cannot find `Unknown` in this scope")
    (fun () -> ignore (Corpus.Harness.root_cause_pred bogus))

(* ------------------------------------------------------------------ *)
(* the extended corpus (serde/futures): same invariants as the suite *)

let extended_tests =
  List.concat_map
    (fun (e : Corpus.Harness.entry) ->
      [
        Alcotest.test_case (e.id ^ " fails as documented") `Quick (fun () ->
            let _, report = Corpus.Harness.solve e in
            check_bool "is a trait error" true (not (Solver.Obligations.all_proved report)));
        Alcotest.test_case (e.id ^ " root cause is a failing leaf") `Quick (fun () ->
            check_bool "leaf" true (Corpus.Harness.root_cause_is_leaf e));
        Alcotest.test_case (e.id ^ " inertia ranks root cause first") `Quick (fun () ->
            let _, tree = Corpus.Harness.failed_tree e in
            let rc = Corpus.Harness.root_cause_pred e in
            check_bool "rank 0" true
              (Argus.Heuristics.rank_of_root_cause Argus.Heuristics.by_inertia tree
                 ~root_cause:rc
              = Some 0));
      ])
    Corpus.Suite.extended
  @ List.map
      (fun (e : Corpus.Harness.entry) ->
        Alcotest.test_case (e.id ^ " type-checks") `Quick (fun () ->
            let _, report = Corpus.Harness.solve e in
            check_bool "all proved" true (Solver.Obligations.all_proved report)))
      Corpus.Suite.extended_ok

let test_extended_serde_chain_depth () =
  (* the serde chain must be deep enough to elide, like §2.1 *)
  let e =
    List.find
      (fun (x : Corpus.Harness.entry) -> x.id = "serde-missing-field-impl")
      Corpus.Suite.extended
  in
  let program, tree = Corpus.Harness.failed_tree e in
  let goal = List.hd (Program.goals program) in
  let d = Rustc_diag.Diagnostic.of_tree program goal tree in
  check_bool "chain elides" true (d.hidden >= 1)

let test_extended_send_auto_trait_shape () =
  (* rc-across-await's tree passes through the structural Send impls *)
  let e =
    List.find
      (fun (x : Corpus.Harness.entry) -> x.id = "futures-rc-across-await")
      Corpus.Suite.extended
  in
  let _, tree = Corpus.Harness.failed_tree e in
  let preds =
    Argus.Proof_tree.fold
      (fun acc (n : Argus.Proof_tree.node) ->
        match n.kind with
        | Argus.Proof_tree.Goal g -> Pretty.predicate ~cfg:Pretty.expanded g.pred :: acc
        | _ -> acc)
      [] tree
  in
  check_bool "tuple Send step present" true
    (List.exists (fun s -> s = "(Db, Rc<Vec<String>>): Send") preds);
  check_bool "root cause present" true
    (List.exists (fun s -> s = "Rc<Vec<String>>: Send") preds)

(* ------------------------------------------------------------------ *)
(* the 8 removed programs: each must exhibit its removal reason *)

let removed_tests =
  List.map
    (fun ((e : Corpus.Harness.entry), reason) ->
      Alcotest.test_case (e.id ^ " exhibits its removal reason") `Quick (fun () ->
          match reason with
          | Corpus.Suite.Not_a_trait_error ->
              check_bool "fails before trait solving" true
                (try
                   ignore (Corpus.Harness.load e);
                   false
                 with Corpus.Harness.Corpus_error _ -> true)
          | Corpus.Suite.No_clear_intention ->
              let _, report = Corpus.Harness.solve e in
              let r = List.hd report.reports in
              check_bool "ambiguous, not disproved" true
                (r.status = Solver.Obligations.Ambiguous)
          | Corpus.Suite.Compiler_limitation ->
              (* rejected (overflow) even though a concrete impl exists *)
              let _, report = Corpus.Harness.solve e in
              check_bool "fails only by engine limits" true
                (not (Solver.Obligations.all_proved report))
          | Corpus.Suite.Crashes_compiler ->
              (* must still terminate for us, at any budget, via the
                 depth limit — and keep failing as the budget grows *)
              List.iter
                (fun depth_limit ->
                  let cfg = { Solver.Solve.default_config with depth_limit } in
                  let program = Corpus.Harness.load e in
                  let report = Solver.Obligations.solve_program ~cfg program in
                  check_bool "overflows at any budget" true
                    (not (Solver.Obligations.all_proved report)))
                [ 8; 32; 64 ]))
    Corpus.Suite.removed

let test_removed_count () =
  check_int "eight removed programs (25 - 17)" 8 (List.length Corpus.Suite.removed)

let () =
  Alcotest.run "corpus"
    [
      ("suite entries", entry_tests);
      ("extras", extras_tests);
      ( "extended corpus",
        extended_tests
        @ [
            Alcotest.test_case "serde chain depth" `Quick test_extended_serde_chain_depth;
            Alcotest.test_case "Send auto-trait shape" `Quick
              test_extended_send_auto_trait_shape;
          ] );
      ("removed (§5.2.1)", Alcotest.test_case "count" `Quick test_removed_count :: removed_tests);
      ( "libraries",
        [
          Alcotest.test_case "coherence" `Quick test_libraries_coherent;
          Alcotest.test_case "orphan rule" `Quick test_libraries_no_orphans;
        ] );
      ( "composition",
        [
          Alcotest.test_case "17 programs" `Quick test_suite_composition;
          Alcotest.test_case "failure-mode coverage" `Quick test_failure_mode_coverage;
          Alcotest.test_case "branch points" `Quick test_branch_points_exist;
          Alcotest.test_case "diesel chain depth" `Quick test_diesel_chain_is_deep;
          Alcotest.test_case "overflow task" `Quick test_overflow_task_is_overflow;
          Alcotest.test_case "root-cause errors" `Quick test_root_cause_error_handling;
        ] );
    ]
