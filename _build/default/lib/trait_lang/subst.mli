(** Substitutions: finite maps from universally quantified parameters to
    types/regions, applied capture-free over L_TRAIT terms. *)

type t

val empty : t
val is_empty : t -> bool
val add_ty : string -> Ty.t -> t -> t
val add_region : string -> Region.t -> t -> t
val of_list : ?regions:(string * Region.t) list -> (string * Ty.t) list -> t
val find_ty : string -> t -> Ty.t option
val find_region : string -> t -> Region.t option
val bindings : t -> (string * Ty.t) list

val region_subst : t -> Region.t -> Region.t
val ty : t -> Ty.t -> Ty.t
val arg : t -> Ty.arg -> Ty.arg
val trait_ref : t -> Ty.trait_ref -> Ty.trait_ref
val projection : t -> Ty.projection -> Ty.projection
val predicate : t -> Predicate.t -> Predicate.t
