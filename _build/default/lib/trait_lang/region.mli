(** Regions (lifetimes).  The trait solver treats them far more coarsely
    than the borrow checker, faithful to the paper's idealization. *)

type t =
  | Static  (** ['static] *)
  | Named of string  (** a universally quantified region parameter *)
  | Infer of int  (** an unresolved region inference variable *)
  | Erased  (** elided in source and irrelevant to solving *)

val static : t
val named : string -> t
val infer : int -> t
val erased : t
val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
