(** Name resolution: lowers the raw surface {!Ast} to a {!Program.t},
    handling two-pass binding, crate provenance, arity checking,
    desugaring ([A + B] bounds, [Trait<Assoc = τ>] bindings, supertraits,
    [Self]), and the numbering of [_] inference holes. *)

type error =
  | Unknown_name of string * Span.t
  | Ambiguous_name of string * Path.t list * Span.t
  | Arity_mismatch of { what : string; expected : int; got : int; span : Span.t }
  | Self_outside_impl of Span.t
  | Binding_not_allowed of Span.t
  | Unknown_assoc of { trait_ : Path.t; assoc : string; span : Span.t }
  | Not_a_trait of string * Span.t
  | Not_a_type of string * Span.t
  | Duplicate_decl of string * Span.t
  | Generic_fn_item of string * Span.t
  | Projection_expected of Span.t

exception Error of error

val error_message : error -> string
val error_span : error -> Span.t

(** Lower a parsed file. *)
val lower : Ast.t -> Program.t

(** Parse ({!Parser.parse}) and resolve in one step.
    @raise Parser.Error on syntax errors
    @raise Error on resolution errors *)
val program_of_string : file:string -> string -> Program.t
