(** Hand-written lexer for the L_TRAIT surface syntax.

    The syntax is small enough that a hand lexer beats a generator: it
    keeps the front end dependency-free and produces precise spans for
    every token, which flow through to declaration spans (CtxtLinks). *)

type error = { message : string; span : Span.t }

exception Error of error

type spanned = { tok : Token.t; span : Span.t }

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let make ~file src = { src; file; pos = 0; line = 1; col = 1 }

let is_eof st = st.pos >= String.length st.src
let peek st = if is_eof st then '\000' else st.src.[st.pos]
let peek2 st = if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if not (is_eof st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.col <- 1
    end
    else st.col <- st.col + 1;
    st.pos <- st.pos + 1
  end

let error st message =
  raise
    (Error
       {
         message;
         span =
           Span.v ~file:st.file ~start_line:st.line ~start_col:st.col ~stop_line:st.line
             ~stop_col:st.col;
       })

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_trivia st =
  match peek st with
  | ' ' | '\t' | '\r' | '\n' ->
      advance st;
      skip_trivia st
  | '/' when peek2 st = '/' ->
      while (not (is_eof st)) && peek st <> '\n' do
        advance st
      done;
      skip_trivia st
  | '/' when peek2 st = '*' ->
      advance st;
      advance st;
      let rec loop () =
        if is_eof st then error st "unterminated block comment"
        else if peek st = '*' && peek2 st = '/' then begin
          advance st;
          advance st
        end
        else begin
          advance st;
          loop ()
        end
      in
      loop ();
      skip_trivia st
  | _ -> ()

let lex_ident st =
  let start = st.pos in
  while is_ident_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_string st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec loop () =
    if is_eof st then error st "unterminated string literal"
    else
      match peek st with
      | '"' -> advance st
      | '\\' ->
          advance st;
          (match peek st with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | c -> Buffer.add_char buf c);
          advance st;
          loop ()
      | c ->
          Buffer.add_char buf c;
          advance st;
          loop ()
  in
  loop ();
  Buffer.contents buf

(** Lex one token; returns [EOF] forever at end of input. *)
let next st : spanned =
  skip_trivia st;
  let start_line = st.line and start_col = st.col in
  let fin tok =
    {
      tok;
      span =
        Span.v ~file:st.file ~start_line ~start_col ~stop_line:st.line ~stop_col:st.col;
    }
  in
  if is_eof st then fin Token.EOF
  else
    match peek st with
    | c when is_digit c ->
        let start = st.pos in
        while is_digit (peek st) do
          advance st
        done;
        fin (Token.INT (int_of_string (String.sub st.src start (st.pos - start))))
    | c when is_ident_start c ->
        let id = lex_ident st in
        if id = "_" then fin Token.UNDERSCORE
        else fin (match Token.keyword_of_string id with Some k -> k | None -> Token.IDENT id)
    | '\'' ->
        advance st;
        if not (is_ident_start (peek st)) then error st "expected lifetime name after '";
        fin (Token.LIFETIME (lex_ident st))
    | '"' -> fin (Token.STRING (lex_string st))
    | '<' ->
        advance st;
        fin Token.LT
    | '>' ->
        advance st;
        fin Token.GT
    | '(' ->
        advance st;
        fin Token.LPAREN
    | ')' ->
        advance st;
        fin Token.RPAREN
    | '{' ->
        advance st;
        fin Token.LBRACE
    | '}' ->
        advance st;
        fin Token.RBRACE
    | '[' ->
        advance st;
        fin Token.LBRACKET
    | ']' ->
        advance st;
        fin Token.RBRACKET
    | ',' ->
        advance st;
        fin Token.COMMA
    | ';' ->
        advance st;
        fin Token.SEMI
    | ':' ->
        advance st;
        if peek st = ':' then begin
          advance st;
          fin Token.COLONCOLON
        end
        else fin Token.COLON
    | '=' ->
        advance st;
        if peek st = '=' then begin
          advance st;
          fin Token.EQEQ
        end
        else fin Token.EQ
    | '-' ->
        advance st;
        if peek st = '>' then begin
          advance st;
          fin Token.ARROW
        end
        else error st "expected '>' after '-'"
    | '&' ->
        advance st;
        fin Token.AMP
    | '+' ->
        advance st;
        fin Token.PLUS
    | '.' ->
        advance st;
        fin Token.DOT
    | '#' ->
        advance st;
        fin Token.HASH
    | '!' ->
        advance st;
        fin Token.BANG
    | c -> error st (Printf.sprintf "unexpected character %C" c)

(** Lex the whole input eagerly. *)
let tokenize ~file src =
  let st = make ~file src in
  let rec loop acc =
    let t = next st in
    if t.tok = Token.EOF then List.rev (t :: acc) else loop (t :: acc)
  in
  loop []
