(** Resolved expressions — the term language whose type checking
    *generates* trait obligations.

    The paper's §4 stresses that "trait solving and type checking are
    interleaving processes": obligations do not exist a priori, they are
    emitted by calls and method selections while types are still full of
    inference variables.  This small expression language (bindings,
    literals, constructor and function calls, trait-method calls) is
    enough to reproduce that interleaving. *)

type t =
  | Var of string * Span.t  (** a local variable *)
  | Lit_int of Span.t
  | Lit_str of Span.t
  | Lit_bool of Span.t
  | Lit_unit of Span.t
  | Ctor of Path.t * t list * Span.t
      (** a struct literal [S(e, ...)]; unit structs take no arguments *)
  | Call of Path.t * t list * Span.t  (** a call of a declared fn item *)
  | Method of t * string * t list * Span.t  (** [recv.m(args)] — trait method *)
  | Fn_ref of Path.t * Span.t  (** naming a fn item as a value *)
  | Tuple_expr of t list * Span.t

type stmt =
  | Let of { name : string; ann : Ty.t option; rhs : t; span : Span.t }
  | Expr_stmt of t

type body = stmt list

let span_of = function
  | Var (_, s)
  | Lit_int s
  | Lit_str s
  | Lit_bool s
  | Lit_unit s
  | Ctor (_, _, s)
  | Call (_, _, s)
  | Method (_, _, _, s)
  | Fn_ref (_, s)
  | Tuple_expr (_, s) ->
      s

(** A short human description of an expression, for obligation origins
    ("required by a bound introduced by ..."). *)
let rec describe = function
  | Var (n, _) -> Printf.sprintf "the variable `%s`" n
  | Lit_int _ -> "this integer literal"
  | Lit_str _ -> "this string literal"
  | Lit_bool _ -> "this boolean literal"
  | Lit_unit _ -> "the unit value"
  | Ctor (p, _, _) -> Printf.sprintf "the `%s` constructor" (Path.name p)
  | Call (p, _, _) -> Printf.sprintf "the call to `%s`" (Path.name p)
  | Method (recv, m, _, _) ->
      Printf.sprintf "the call to `.%s()` on %s" m (describe recv)
  | Fn_ref (p, _) -> Printf.sprintf "the function `%s`" (Path.name p)
  | Tuple_expr _ -> "this tuple"
