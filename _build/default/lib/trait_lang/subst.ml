(** Substitutions: finite maps from universally quantified parameters to
    types/regions, applied capture-free over L_TRAIT terms.

    The solver instantiates a declaration's generics with fresh inference
    variables by building a substitution here; impls' associated-type
    bindings are projected through the same machinery. *)

module StrMap = Map.Make (String)

type t = { tys : Ty.t StrMap.t; regions : Region.t StrMap.t }

let empty = { tys = StrMap.empty; regions = StrMap.empty }

let is_empty s = StrMap.is_empty s.tys && StrMap.is_empty s.regions

let add_ty name ty s = { s with tys = StrMap.add name ty s.tys }
let add_region name r s = { s with regions = StrMap.add name r s.regions }

let of_list ?(regions = []) tys =
  let s = List.fold_left (fun s (n, t) -> add_ty n t s) empty tys in
  List.fold_left (fun s (n, r) -> add_region n r s) s regions

let find_ty name s = StrMap.find_opt name s.tys
let find_region name s = StrMap.find_opt name s.regions

let bindings s = StrMap.bindings s.tys

let region_subst s = function
  | Region.Named n as r -> Option.value ~default:r (find_region n s)
  | r -> r

let rec ty s (t : Ty.t) : Ty.t =
  match t with
  | Unit | Bool | Int | Uint | Float | Str | Infer _ -> t
  | Param name -> Option.value ~default:t (find_ty name s)
  | Ref (r, t') -> Ref (region_subst s r, ty s t')
  | RefMut (r, t') -> RefMut (region_subst s r, ty s t')
  | Ctor (p, args) -> Ctor (p, List.map (arg s) args)
  | Tuple ts -> Tuple (List.map (ty s) ts)
  | FnPtr (args, ret) -> FnPtr (List.map (ty s) args, ty s ret)
  | FnItem (p, args, ret) -> FnItem (p, List.map (ty s) args, ty s ret)
  | Dynamic tr -> Dynamic (trait_ref s tr)
  | Proj p -> Proj (projection s p)

and arg s : Ty.arg -> Ty.arg = function
  | Ty t -> Ty (ty s t)
  | Lifetime r -> Lifetime (region_subst s r)

and trait_ref s (tr : Ty.trait_ref) : Ty.trait_ref =
  { tr with args = List.map (arg s) tr.args }

and projection s (p : Ty.projection) : Ty.projection =
  {
    p with
    self_ty = ty s p.self_ty;
    proj_trait = trait_ref s p.proj_trait;
    assoc_args = List.map (arg s) p.assoc_args;
  }

let predicate s (p : Predicate.t) : Predicate.t =
  match p with
  | Trait { self_ty; trait_ref = tr } ->
      Trait { self_ty = ty s self_ty; trait_ref = trait_ref s tr }
  | Projection { projection = pr; term } ->
      Projection { projection = projection s pr; term = ty s term }
  | TypeOutlives (t, r) -> TypeOutlives (ty s t, region_subst s r)
  | RegionOutlives (a, b) -> RegionOutlives (region_subst s a, region_subst s b)
  | WellFormed t -> WellFormed (ty s t)
  | ObjectSafe _ | ConstEvaluatable _ -> p
  | NormalizesTo (pr, v) -> NormalizesTo (projection s pr, v)
