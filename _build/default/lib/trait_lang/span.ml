(** Source spans.

    Spans are the "auxiliary information" of the CtxtLinks principle: the
    inference tree itself shows only trait bounds and impl blocks, while
    source locations are available on demand (jump-to-definition in the
    IDE; [--spans] in the CLI). *)

type pos = { line : int; col : int }

type t = { file : string; start : pos; stop : pos }

let dummy = { file = "<builtin>"; start = { line = 0; col = 0 }; stop = { line = 0; col = 0 } }

let v ~file ~start_line ~start_col ~stop_line ~stop_col =
  {
    file;
    start = { line = start_line; col = start_col };
    stop = { line = stop_line; col = stop_col };
  }

let is_dummy s = s.file = dummy.file

let file s = s.file
let start_line s = s.start.line

(** [file.rs:12:8] style rendering, as used in rustc diagnostics. *)
let to_string s =
  if is_dummy s then "<builtin>"
  else Printf.sprintf "%s:%d:%d" s.file s.start.line s.start.col

let pp ppf s = Fmt.string ppf (to_string s)

let equal (a : t) (b : t) = a = b

(** Merge two spans into the smallest span covering both (same file). *)
let union a b =
  if is_dummy a then b
  else if is_dummy b then a
  else
    let le p q = p.line < q.line || (p.line = q.line && p.col <= q.col) in
    {
      file = a.file;
      start = (if le a.start b.start then a.start else b.start);
      stop = (if le a.stop b.stop then b.stop else a.stop);
    }
