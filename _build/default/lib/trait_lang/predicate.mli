(** Predicates of L_TRAIT: the paper's three core forms (trait bounds,
    projections, outlives) plus the load-bearing compiler-internal kinds
    of §4, including the stateful [NormalizesTo]. *)

type trait_pred = { self_ty : Ty.t; trait_ref : Ty.trait_ref }
type proj_pred = { projection : Ty.projection; term : Ty.t }

type t =
  | Trait of trait_pred  (** τ : T⟨τ̄⟩ *)
  | Projection of proj_pred  (** π == τ *)
  | TypeOutlives of Ty.t * Region.t  (** τ : ϱ *)
  | RegionOutlives of Region.t * Region.t
  | WellFormed of Ty.t  (** internal *)
  | ObjectSafe of Path.t  (** internal *)
  | ConstEvaluatable of string  (** internal: const-generic residue *)
  | NormalizesTo of Ty.projection * int
      (** internal, {e stateful}: normalize π into inference variable
          [?n]; the value is captured after the subtree executes (§4) *)

val trait_ : Ty.t -> Ty.trait_ref -> t
val projection_eq : Ty.projection -> Ty.t -> t
val outlives : Ty.t -> Region.t -> t
val well_formed : Ty.t -> t

(** Developer-facing kinds, shown by default; the rest sit behind the §4
    "show all predicates" toggle. *)
val is_user_visible : t -> bool

val is_stateful : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

(** Fold over every type embedded in the predicate. *)
val fold_tys : ('a -> Ty.t -> 'a) -> 'a -> t -> 'a

(** Inference variables anywhere in the predicate (a §5.2 baseline counts
    these). *)
val infer_vars : t -> int list

val has_infer : t -> bool
val self_ty : t -> Ty.t option
val trait_path : t -> Path.t option
