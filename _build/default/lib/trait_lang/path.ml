(** Definition paths.

    Every declared item (struct, trait, impl, function) lives at a
    definition path such as [diesel::expression::AppearsOnTable].  Paths
    record provenance — which crate an item belongs to — which drives both
    the ShortTys interface principle (print only the final segment by
    default, the full path on demand) and the orphan-rule component of the
    inertia heuristic. *)

type crate =
  | Local  (** the crate under analysis, i.e. the user's own code *)
  | External of string  (** a dependency, e.g. [External "diesel"] *)

type t = {
  crate : crate;
  segments : string list;  (** module segments, then the item name; nonempty *)
}

let v ?(crate = Local) segments =
  if segments = [] then invalid_arg "Path.v: empty segment list";
  { crate; segments }

let local segments = v ~crate:Local segments
let external_ krate segments = v ~crate:(External krate) segments

(** The item's own name: the last segment. *)
let name p =
  match List.rev p.segments with
  | last :: _ -> last
  | [] -> assert false

let crate p = p.crate
let segments p = p.segments

let is_local p = p.crate = Local

let crate_name p = match p.crate with Local -> "crate" | External s -> s

(** Fully-qualified rendering, e.g. [diesel::expression::AppearsOnTable].
    Local items are prefixed with [crate::] only when [explicit_crate]. *)
let to_string ?(explicit_crate = false) p =
  let prefix =
    match p.crate with
    | External s -> [ s ]
    | Local -> if explicit_crate then [ "crate" ] else []
  in
  String.concat "::" (prefix @ p.segments)

let pp ppf p = Fmt.string ppf (to_string p)

let equal a b = a.crate = b.crate && a.segments = b.segments

let compare a b =
  let c =
    compare
      (match a.crate with Local -> "" | External s -> s)
      (match b.crate with Local -> "" | External s -> s)
  in
  if c <> 0 then c else compare a.segments b.segments

let hash p = Hashtbl.hash (p.crate, p.segments)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
