(** Types of L_TRAIT (Fig. 5), extended with the features the paper's
    motivating examples need: primitive scalars, function items (each
    Rust [fn] has its own zero-sized type, essential to §2.3), trait
    objects, and inference variables. *)

type t =
  | Unit
  | Bool
  | Int  (** [i32] *)
  | Uint  (** [usize] *)
  | Float
  | Str
  | Param of string  (** a universally quantified type parameter α *)
  | Infer of int  (** an inference variable ?n *)
  | Ref of Region.t * t
  | RefMut of Region.t * t
  | Ctor of Path.t * arg list  (** a nominal application S⟨τ̄⟩ *)
  | Tuple of t list  (** n-ary; 1-tuples [(τ,)] are distinct from τ *)
  | FnPtr of t list * t
  | FnItem of Path.t * t list * t  (** [fn(τ̄) -> τ {name}] *)
  | Dynamic of trait_ref  (** [dyn T⟨τ̄⟩] *)
  | Proj of projection  (** an unnormalized associated-type projection π *)

(** A trait instance T⟨τ̄, ϱ̄⟩; the self type is supplied separately. *)
and trait_ref = { trait : Path.t; args : arg list }

(** π ⟶ [<τ as T⟨τ̄⟩>::D⟨τ̄₂⟩]. *)
and projection = {
  self_ty : t;
  proj_trait : trait_ref;
  assoc : string;
  assoc_args : arg list;
}

and arg = Ty of t | Lifetime of Region.t

(** {1 Constructors} *)

val unit : t
val bool : t
val int : t
val uint : t
val float : t
val str : t
val param : string -> t
val infer : int -> t
val ref_ : ?region:Region.t -> t -> t
val ref_mut : ?region:Region.t -> t -> t
val ctor : Path.t -> t list -> t
val ctor_args : Path.t -> arg list -> t

(** [tuple []] is {!Unit}; one-element lists make genuine 1-tuples. *)
val tuple : t list -> t

val fn_ptr : t list -> t -> t
val fn_item : Path.t -> t list -> t -> t
val dynamic : trait_ref -> t
val proj : projection -> t
val trait_ref : ?args:t list -> Path.t -> trait_ref
val trait_ref_args : Path.t -> arg list -> trait_ref
val projection : ?assoc_args:arg list -> t -> trait_ref -> string -> projection

(** {1 Equality (structural; inference variables compare by id)} *)

val equal : t -> t -> bool
val equal_arg : arg -> arg -> bool
val equal_args : arg list -> arg list -> bool
val equal_trait_ref : trait_ref -> trait_ref -> bool
val equal_projection : projection -> projection -> bool
val compare : t -> t -> int

(** {1 Folds and queries} *)

(** Pre-order visit of every sub-type, including the type itself. *)
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

val fold_args : ('a -> t -> 'a) -> 'a -> arg list -> 'a

(** Number of type nodes — a proxy for textual size. *)
val size : t -> int

(** Inference variables, deduplicated, ascending. *)
val infer_vars : t -> int list

val params : t -> string list
val has_infer : t -> bool

(** Occurs check: does [?i] appear in the type? *)
val mentions_infer : int -> t -> bool

(** Function-shaped?  (inertia's function-trait-bound categories) *)
val is_fn_like : t -> bool

(** The head constructor path of a nominal type, if any. *)
val head_path : t -> Path.t option

(** Provenance of the head: structural heads (tuples, refs, primitives,
    params) have none. *)
val head_crate : t -> Path.crate option
