(** Source spans — the CtxtLinks auxiliary data, served on demand rather
    than interleaved into the inference tree. *)

type pos = { line : int; col : int }
type t = { file : string; start : pos; stop : pos }

val dummy : t

val v :
  file:string -> start_line:int -> start_col:int -> stop_line:int -> stop_col:int -> t

val is_dummy : t -> bool
val file : t -> string
val start_line : t -> int

(** [file.rs:12:8], as in rustc diagnostics. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** Smallest span covering both (dummy spans are absorbed). *)
val union : t -> t -> t
