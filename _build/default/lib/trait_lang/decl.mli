(** Declarations of L_TRAIT: newtypes/structs, traits, impl blocks
    (Fig. 5), and function items (§2.3's [run_timer] is a function whose
    type must implement [IntoSystem]).  Every declaration carries a span
    (CtxtLinks) and provenance (the orphan rule). *)

(** Parameters φ ⟶ ∀ ϱ̄, ᾱ where p̄. *)
type generics = {
  lifetimes : string list;
  ty_params : string list;
  where_clauses : Predicate.t list;
}

val no_generics : generics
val generics : ?lifetimes:string list -> ?where_clauses:Predicate.t list -> string list -> generics

(** [type D⟨φ₂⟩ (: B̄)? (= τ)?] inside a trait. *)
type assoc_ty_decl = {
  assoc_name : string;
  assoc_generics : generics;
  assoc_bounds : Ty.trait_ref list;
  assoc_default : Ty.t option;
}

(** [newtype S φ = τ], or an opaque [struct S⟨φ⟩] when [ty_repr] is
    [None]. *)
type tydecl = {
  ty_path : Path.t;
  ty_generics : generics;
  ty_repr : Ty.t option;
  ty_span : Span.t;
}

(** [fn m(self, ...) -> out] — the receiver is implicit with type [Self]. *)
type method_sig = {
  m_name : string;
  m_generics : generics;  (** per-method generics; where-clauses become
                              obligations at each call site *)
  m_inputs : Ty.t list;  (** excluding the receiver *)
  m_output : Ty.t;
  m_span : Span.t;
}

type trdecl = {
  tr_path : Path.t;
  tr_generics : generics;  (** excluding the implicit Self *)
  tr_assocs : assoc_ty_decl list;
  tr_methods : method_sig list;
  tr_supertraits : Ty.trait_ref list;
  tr_span : Span.t;
  tr_on_unimplemented : string option;
      (** the [#[diagnostic::on_unimplemented]] custom message (§6) *)
}

type assoc_ty_binding = { bind_name : string; bind_generics : generics; bind_ty : Ty.t }

(** [impl φ₁ T for τ₁ { D̄ φ₂ = τ₂ }]. *)
type impl = {
  impl_id : int;  (** unique within a program *)
  impl_generics : generics;
  impl_trait : Ty.trait_ref;
  impl_self : Ty.t;
  impl_assocs : assoc_ty_binding list;
  impl_span : Span.t;
  impl_crate : Path.crate;  (** crate the impl block appears in *)
}

type fndecl = {
  fn_path : Path.t;
  fn_generics : generics;
  fn_inputs : Ty.t list;
  fn_param_names : string list option;  (** present iff declared with names *)
  fn_output : Ty.t;
  fn_body : Expr.body option;  (** type-checked by the typeck library *)
  fn_span : Span.t;
}

type t = Type of tydecl | Trait of trdecl | Impl of impl | Fn of fndecl

val span : t -> Span.t
val path : t -> Path.t option

(** The fn-item type, e.g. [fn(Timer) -> () {run_timer}]. *)
val fn_item_ty : fndecl -> Ty.t
