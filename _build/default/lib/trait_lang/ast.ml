(** Raw surface AST, produced by {!Parser} and consumed by {!Resolve}.

    Names are unresolved strings; the resolver turns them into
    {!Path.t}-based {!Program.t} declarations, reporting unknown /
    ambiguous / arity errors with precise spans. *)

type raw_ty =
  | RName of string list * raw_arg list * Span.t
      (** possibly-qualified name with generic args; also covers
          primitives ([i32], [String], ...) and type parameters, which the
          resolver disambiguates *)
  | RRef of string option * bool * raw_ty  (** [&'a (mut)? τ] *)
  | RTuple of raw_ty list  (** [()] when empty *)
  | RFnPtr of raw_ty list * raw_ty option
  | RFnItem of string list * Span.t  (** [fn[name]] — the fn item type of a declared fn *)
  | RDyn of string list * raw_arg list * Span.t
  | RProj of raw_ty * (string list * raw_arg list * Span.t) * string * raw_arg list
      (** [<τ as Trait<..>>::Assoc<..>] *)
  | RInfer of Span.t  (** [_] *)
  | RSelf of Span.t

and raw_arg =
  | RTy of raw_ty
  | RLt of string
  | RBinding of string * raw_ty  (** [Assoc = τ] sugar inside a bound *)

(** A trait bound reference: name + args (args may include bindings). *)
type raw_bound = { bound_name : string list; bound_args : raw_arg list; bound_span : Span.t }

type raw_pred =
  | RPTrait of raw_ty * raw_bound list  (** [τ: A + B] *)
  | RPProjEq of raw_ty * raw_ty  (** [π == τ] *)
  | RPOutlives of raw_ty * string  (** [τ: 'a] *)

type raw_generics = {
  rg_lifetimes : string list;
  rg_params : string list;
  rg_where : raw_pred list;
}

let rg_empty = { rg_lifetimes = []; rg_params = []; rg_where = [] }

type raw_assoc_decl = {
  ra_name : string;
  ra_generics : raw_generics;
  ra_bounds : raw_bound list;
  ra_default : raw_ty option;
}

type attr = On_unimplemented of string

(** A trait method signature: [fn m(self, τ̄) -> τ;].  The receiver is
    implicit (its type is [Self]); [inputs] are the remaining params. *)
type raw_method = {
  rm_name : string;
  rm_generics : raw_generics;  (** per-method generics and where-clauses *)
  rm_inputs : raw_ty list;
  rm_output : raw_ty option;
  rm_span : Span.t;
}

(** Raw expressions, for fn bodies. *)
type raw_expr =
  | RE_name of string list * Span.t  (** variable / unit struct / fn reference *)
  | RE_int of Span.t
  | RE_string of Span.t
  | RE_call of string list * raw_expr list * Span.t  (** [f(e, ...)] or [S(e, ...)] *)
  | RE_method of raw_expr * string * raw_expr list * Span.t
  | RE_tuple of raw_expr list * Span.t

type raw_stmt =
  | RS_let of { name : string; ann : raw_ty option; rhs : raw_expr; span : Span.t }
  | RS_expr of raw_expr

type item =
  | RStruct of {
      name : string;
      generics : raw_generics;
      repr : raw_ty option;
      span : Span.t;
    }
  | RTrait of {
      name : string;
      generics : raw_generics;
      supertraits : raw_bound list;
      assocs : raw_assoc_decl list;
      methods : raw_method list;
      span : Span.t;
      attrs : attr list;
    }
  | RImpl of {
      generics : raw_generics;
      trait_ : raw_bound;
      self_ty : raw_ty;
      assoc_bindings : (string * raw_generics * raw_ty) list;
      span : Span.t;
    }
  | RFn of {
      name : string;
      generics : raw_generics;
      inputs : raw_ty list;
      param_names : string list option;  (** named params, when a body follows *)
      output : raw_ty option;
      body : raw_stmt list option;
      span : Span.t;
    }
  | RGoal of { pred : raw_pred; origin : string option; span : Span.t }
  | RMod of string * item list
  | RExtern of string * item list

type t = item list
