(** Definition paths with crate provenance.

    Provenance drives both the ShortTys printing principle (final segment
    by default, full path on demand) and the orphan-rule component of the
    inertia heuristic. *)

type crate =
  | Local  (** the crate under analysis *)
  | External of string  (** a dependency, e.g. [External "diesel"] *)

type t = { crate : crate; segments : string list }

(** @raise Invalid_argument on an empty segment list. *)
val v : ?crate:crate -> string list -> t

val local : string list -> t
val external_ : string -> string list -> t

(** The item's own name: the last segment. *)
val name : t -> string

val crate : t -> crate
val segments : t -> string list
val is_local : t -> bool
val crate_name : t -> string

(** Fully-qualified rendering; local items get [crate::] only when
    [explicit_crate]. *)
val to_string : ?explicit_crate:bool -> t -> string

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

module Ord : Stdlib.Map.OrderedType with type t = t
module Map : Stdlib.Map.S with type key = t
module Set : Stdlib.Set.S with type elt = t
