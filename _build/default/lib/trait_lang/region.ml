(** Regions (lifetimes).

    L_TRAIT types carry region-annotated references.  Regions matter to the
    trait language mostly through outlives-predicates; the solver treats
    them far more coarsely than rustc's borrow checker, which is faithful
    to the paper's idealization (Fig. 5 includes [τ : ϱ] predicates but the
    paper never depends on region inference). *)

type t =
  | Static  (** ['static] *)
  | Named of string  (** a universally quantified region parameter, ['a] *)
  | Infer of int  (** an unresolved region inference variable, ['?0] *)
  | Erased  (** region elided in the source and irrelevant to solving *)

let static = Static
let named n = Named n
let infer i = Infer i
let erased = Erased

let equal a b =
  match (a, b) with
  | Static, Static | Erased, Erased -> true
  | Named a, Named b -> String.equal a b
  | Infer a, Infer b -> Int.equal a b
  | _ -> false

let compare = Stdlib.compare

let to_string = function
  | Static -> "'static"
  | Named n -> "'" ^ n
  | Infer i -> Printf.sprintf "'?%d" i
  | Erased -> "'_"

let pp ppf r = Fmt.string ppf (to_string r)
