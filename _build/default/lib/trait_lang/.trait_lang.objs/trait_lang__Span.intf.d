lib/trait_lang/span.mli: Format
