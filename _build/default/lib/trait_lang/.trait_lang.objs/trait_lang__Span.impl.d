lib/trait_lang/span.ml: Fmt Printf
