lib/trait_lang/pretty.ml: Buffer Decl List Path Predicate Printf Region String Ty
