lib/trait_lang/path.ml: Fmt Hashtbl List Map Set String
