lib/trait_lang/predicate.ml: Int List Path Region Stdlib String Ty
