lib/trait_lang/predicate.mli: Path Region Ty
