lib/trait_lang/token.ml: Printf
