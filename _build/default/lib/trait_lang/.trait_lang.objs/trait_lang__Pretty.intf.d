lib/trait_lang/pretty.mli: Decl Predicate Ty
