lib/trait_lang/resolve.ml: Ast Decl Expr Hashtbl List Option Parser Path Predicate Printf Program Region Span String Ty
