lib/trait_lang/region.ml: Fmt Int Printf Stdlib String
