lib/trait_lang/expr.ml: Path Printf Span Ty
