lib/trait_lang/parser.ml: Array Ast Lexer List Printf Span Token
