lib/trait_lang/resolve.mli: Ast Path Program Span
