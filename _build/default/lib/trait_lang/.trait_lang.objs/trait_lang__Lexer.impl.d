lib/trait_lang/lexer.ml: Buffer List Printf Span String Token
