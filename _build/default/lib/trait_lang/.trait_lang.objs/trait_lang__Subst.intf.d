lib/trait_lang/subst.mli: Predicate Region Ty
