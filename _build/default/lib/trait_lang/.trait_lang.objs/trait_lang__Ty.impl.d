lib/trait_lang/ty.ml: Int List Option Path Region Stdlib String
