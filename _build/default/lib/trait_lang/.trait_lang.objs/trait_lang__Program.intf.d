lib/trait_lang/program.mli: Decl Path Predicate Span
