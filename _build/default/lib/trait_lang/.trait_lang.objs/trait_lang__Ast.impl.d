lib/trait_lang/ast.ml: Span
