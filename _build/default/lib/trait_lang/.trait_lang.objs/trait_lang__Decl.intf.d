lib/trait_lang/decl.mli: Expr Path Predicate Span Ty
