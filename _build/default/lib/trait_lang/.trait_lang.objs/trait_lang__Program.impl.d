lib/trait_lang/program.ml: Decl List Option Path Predicate Span
