lib/trait_lang/decl.ml: Expr Path Predicate Span Ty
