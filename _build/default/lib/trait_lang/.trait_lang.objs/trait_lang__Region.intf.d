lib/trait_lang/region.mli: Format
