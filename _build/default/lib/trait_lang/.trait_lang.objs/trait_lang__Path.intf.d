lib/trait_lang/path.mli: Format Stdlib
