lib/trait_lang/subst.ml: List Map Option Predicate Region String Ty
