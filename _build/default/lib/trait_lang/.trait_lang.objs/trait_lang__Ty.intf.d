lib/trait_lang/ty.mli: Path Region
