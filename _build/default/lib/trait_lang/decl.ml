(** Declarations of L_TRAIT: newtypes/structs, traits, and impl blocks
    (Fig. 5), plus function items, which the paper's examples need (§2.3's
    [run_timer] is a *function* whose type must implement [IntoSystem]).

    Every declaration carries a {!Span.t} (the CtxtLinks auxiliary data)
    and its {!Path.t} records provenance (local vs. external crate), which
    the orphan-rule component of inertia consults. *)

(** Parameters φ ⟶ ∀ ϱ̄, ᾱ where p̄ — the quantified generics of a
    declaration together with its where-clauses. *)
type generics = {
  lifetimes : string list;  (** ϱ̄ — declared region parameters *)
  ty_params : string list;  (** ᾱ — declared type parameters *)
  where_clauses : Predicate.t list;  (** p̄ *)
}

let no_generics = { lifetimes = []; ty_params = []; where_clauses = [] }

let generics ?(lifetimes = []) ?(where_clauses = []) ty_params =
  { lifetimes; ty_params; where_clauses }

(** An associated-type declaration inside a trait: [type D⟨φ₂⟩ (= τ)?]. *)
type assoc_ty_decl = {
  assoc_name : string;
  assoc_generics : generics;
  assoc_bounds : Ty.trait_ref list;  (** bounds [type D: B₁ + B₂] *)
  assoc_default : Ty.t option;
}

(** [newtype S φ = τ] — or an opaque struct [struct S⟨φ⟩] when [repr] is
    [None].  Nominal typing is what permits otherwise-overlapping impls. *)
type tydecl = {
  ty_path : Path.t;
  ty_generics : generics;
  ty_repr : Ty.t option;
  ty_span : Span.t;
}

(** [trait T φ₁ { D̄ }]. *)
type method_sig = {
  m_name : string;
  m_generics : generics;  (** per-method generics; where-clauses become
                              obligations at each call site *)
  m_inputs : Ty.t list;  (** excluding the implicit [self : Self] receiver *)
  m_output : Ty.t;
  m_span : Span.t;
}
(** A trait method signature [fn m(self, ...) -> out].  Methods enable
    trait-method calls and the speculative resolution of the paper's §4. *)

type trdecl = {
  tr_path : Path.t;
  tr_generics : generics;  (** generics *excluding* the implicit Self *)
  tr_assocs : assoc_ty_decl list;
  tr_methods : method_sig list;
  tr_supertraits : Ty.trait_ref list;  (** [trait T: Super] *)
  tr_span : Span.t;
  tr_on_unimplemented : string option;
      (** the [#[diagnostic::on_unimplemented]] custom message (§6) *)
}

(** An associated-type binding inside an impl: [type D⟨φ⟩ = τ]. *)
type assoc_ty_binding = {
  bind_name : string;
  bind_generics : generics;
  bind_ty : Ty.t;
}

(** [impl φ₁ T for τ₁ { D̄ φ₂ = τ₂ }]. *)
type impl = {
  impl_id : int;  (** unique within a program; stable display order *)
  impl_generics : generics;
  impl_trait : Ty.trait_ref;
  impl_self : Ty.t;
  impl_assocs : assoc_ty_binding list;
  impl_span : Span.t;
  impl_crate : Path.crate;  (** crate the impl block appears in *)
}

(** A function item [fn f⟨φ⟩(τ̄) -> τ].  Its type is {!Ty.FnItem}. *)
type fndecl = {
  fn_path : Path.t;
  fn_generics : generics;
  fn_inputs : Ty.t list;
  fn_param_names : string list option;  (** present iff declared with names *)
  fn_output : Ty.t;
  fn_body : Expr.body option;  (** type-checked by the typeck library *)
  fn_span : Span.t;
}

type t =
  | Type of tydecl
  | Trait of trdecl
  | Impl of impl
  | Fn of fndecl

let span = function
  | Type d -> d.ty_span
  | Trait d -> d.tr_span
  | Impl d -> d.impl_span
  | Fn d -> d.fn_span

let path = function
  | Type d -> Some d.ty_path
  | Trait d -> Some d.tr_path
  | Fn d -> Some d.fn_path
  | Impl _ -> None

(** The self type of a fn item, e.g. [fn(Timer) -> () {run_timer}]. *)
let fn_item_ty (f : fndecl) = Ty.FnItem (f.fn_path, f.fn_inputs, f.fn_output)
