(** Tokens of the L_TRAIT surface syntax. *)

type t =
  | IDENT of string
  | LIFETIME of string  (** ['a] without the quote *)
  | STRING of string  (** ["..."] literal, for attributes and goal origins *)
  | INT of int
  (* Keywords *)
  | KW_EXTERN
  | KW_CRATE
  | KW_MOD
  | KW_STRUCT
  | KW_NEWTYPE
  | KW_TRAIT
  | KW_IMPL
  | KW_FOR
  | KW_WHERE
  | KW_FN
  | KW_GOAL
  | KW_TYPE
  | KW_DYN
  | KW_MUT
  | KW_AS
  | KW_SELF  (** [Self] *)
  | KW_FROM
  (* Punctuation *)
  | LT  (** [<] *)
  | GT  (** [>] *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | COLONCOLON  (** [::] *)
  | EQEQ  (** [==] *)
  | EQ  (** [=] *)
  | ARROW  (** [->] *)
  | AMP  (** [&] *)
  | PLUS
  | HASH  (** [#] *)
  | BANG
  | DOT  (** [.] *)
  | UNDERSCORE
  | EOF

let keyword_of_string = function
  | "extern" -> Some KW_EXTERN
  | "crate" -> Some KW_CRATE
  | "mod" -> Some KW_MOD
  | "struct" -> Some KW_STRUCT
  | "newtype" -> Some KW_NEWTYPE
  | "trait" -> Some KW_TRAIT
  | "impl" -> Some KW_IMPL
  | "for" -> Some KW_FOR
  | "where" -> Some KW_WHERE
  | "fn" -> Some KW_FN
  | "goal" -> Some KW_GOAL
  | "type" -> Some KW_TYPE
  | "dyn" -> Some KW_DYN
  | "mut" -> Some KW_MUT
  | "as" -> Some KW_AS
  | "Self" -> Some KW_SELF
  | "from" -> Some KW_FROM
  | _ -> None

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | LIFETIME s -> Printf.sprintf "lifetime '%s" s
  | STRING s -> Printf.sprintf "string %S" s
  | INT i -> string_of_int i
  | KW_EXTERN -> "'extern'"
  | KW_CRATE -> "'crate'"
  | KW_MOD -> "'mod'"
  | KW_STRUCT -> "'struct'"
  | KW_NEWTYPE -> "'newtype'"
  | KW_TRAIT -> "'trait'"
  | KW_IMPL -> "'impl'"
  | KW_FOR -> "'for'"
  | KW_WHERE -> "'where'"
  | KW_FN -> "'fn'"
  | KW_GOAL -> "'goal'"
  | KW_TYPE -> "'type'"
  | KW_DYN -> "'dyn'"
  | KW_MUT -> "'mut'"
  | KW_AS -> "'as'"
  | KW_SELF -> "'Self'"
  | KW_FROM -> "'from'"
  | LT -> "'<'"
  | GT -> "'>'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | COLON -> "':'"
  | COLONCOLON -> "'::'"
  | EQEQ -> "'=='"
  | EQ -> "'='"
  | ARROW -> "'->'"
  | AMP -> "'&'"
  | PLUS -> "'+'"
  | HASH -> "'#'"
  | BANG -> "'!'"
  | DOT -> "'.'"
  | UNDERSCORE -> "'_'"
  | EOF -> "end of input"
