(** Assembling and running simulated study sessions (§5.1.1 Procedure).

    "Participants were given four tasks drawn randomly from the available
    seven.  A maximum of ten minutes was allotted per task.  Participants
    completed four tasks total, two in each condition [...]  Task order
    was blocked by condition."  *)

type condition = Argus | Control

let condition_name = function Argus -> "with Argus" | Control -> "without Argus"

type trial = {
  participant : int;
  task_id : string;
  condition : condition;
  localized : bool;
  t_localize : float;  (** seconds from task start, capped at 600 *)
  fixed : bool;
  t_fix : float;  (** seconds from task start, capped at 600 *)
}

type dataset = { trials : trial list; n_participants : int }

let run_trial (p : Participant.t) ~params (task : Task.t) (condition : condition) : trial =
  let loc =
    match condition with
    | Argus -> Participant.localize_with_argus p ~params task
    | Control -> Participant.localize_control p ~params task
  in
  let fix =
    if loc.succeeded then Participant.fix p ~params task ~t_loc:loc.elapsed
    else { Participant.succeeded = false; elapsed = params.Participant.time_cap }
  in
  {
    participant = p.id;
    task_id = task.entry.id;
    condition;
    localized = loc.succeeded;
    t_localize = (if loc.succeeded then loc.elapsed else params.Participant.time_cap);
    fixed = fix.succeeded;
    t_fix = (if fix.succeeded then fix.elapsed else params.Participant.time_cap);
  }

(** Run one participant's session: four random tasks, conditions blocked,
    block order randomized. *)
let run_session ~params ~rng (tasks : Task.t list) (pid : int) : trial list =
  let p = Participant.fresh ~params ~rng pid in
  let chosen = Stats.Rng.sample p.rng 4 tasks in
  let argus_first = Stats.Rng.bool p.rng in
  let conditions =
    if argus_first then [ Argus; Argus; Control; Control ]
    else [ Control; Control; Argus; Argus ]
  in
  List.map2 (fun task condition -> run_trial p ~params task condition) chosen conditions

(** The full study: [n] participants (the paper's final study has 25). *)
let run ?(params = Participant.default_params) ?(n = 25) ~seed () : dataset =
  let tasks = Lazy.force Task.all in
  let rng = Stats.Rng.create ~seed in
  let trials = List.concat_map (run_session ~params ~rng tasks) (List.init n (fun i -> i)) in
  { trials; n_participants = n }

let by_condition (d : dataset) (c : condition) =
  List.filter (fun t -> t.condition = c) d.trials
