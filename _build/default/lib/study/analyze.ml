(** Statistical analysis of a study dataset, producing every number the
    paper's §5.1.2 reports for Fig. 11: localization/fix rates with 95%
    binomial CIs and chi-square tests, localization/fix time medians with
    bootstrap CIs and Kruskal-Wallis tests. *)

type rate = {
  successes : int;
  trials : int;
  value : float;
  ci : Stats.Ci.interval;
}

type timing = {
  median : float;
  ci : Stats.Ci.interval;
  samples : float list;
}

type condition_summary = {
  condition : Simulate.condition;
  loc_rate : rate;
  loc_time : timing;
  fix_rate : rate;
  fix_time : timing;
}

type results = {
  argus : condition_summary;
  control : condition_summary;
  loc_rate_test : Stats.Tests.test_result;
  loc_time_test : Stats.Tests.test_result;
  fix_rate_test : Stats.Tests.test_result;
  fix_time_test : Stats.Tests.test_result;
  fix_rate_within : Stats.Permutation.result;
      (** the paper's GLMM with participant as random effect, realized as
          a within-participant permutation test (§5.1.2: p = 0.03) *)
}

let rate_of ~rng:_ successes trials =
  {
    successes;
    trials;
    value = float_of_int successes /. float_of_int (max 1 trials);
    ci = Stats.Ci.wilson ~successes ~trials ();
  }

let timing_of ~rng samples =
  {
    median = Stats.Descriptive.median samples;
    ci = Stats.Ci.bootstrap_median ~rng samples;
    samples;
  }

let summarize ~rng (d : Simulate.dataset) (c : Simulate.condition) : condition_summary =
  let trials = Simulate.by_condition d c in
  let n = List.length trials in
  let locs = List.filter (fun (t : Simulate.trial) -> t.localized) trials in
  let fixes = List.filter (fun (t : Simulate.trial) -> t.fixed) trials in
  {
    condition = c;
    loc_rate = rate_of ~rng (List.length locs) n;
    loc_time = timing_of ~rng (List.map (fun (t : Simulate.trial) -> t.t_localize) trials);
    fix_rate = rate_of ~rng (List.length fixes) n;
    fix_time = timing_of ~rng (List.map (fun (t : Simulate.trial) -> t.t_fix) trials);
  }

let analyze ?(seed = 0xC1) (d : Simulate.dataset) : results =
  let rng = Stats.Rng.create ~seed in
  let argus = summarize ~rng d Simulate.Argus in
  let control = summarize ~rng d Simulate.Control in
  let chi2_of (a : rate) (b : rate) =
    Stats.Tests.chi2_2x2 ~a:a.successes ~b:(a.trials - a.successes) ~c:b.successes
      ~d:(b.trials - b.successes)
  in
  let strata =
    List.init d.n_participants (fun pid ->
        d.trials
        |> List.filter (fun (t : Simulate.trial) -> t.participant = pid)
        |> List.map (fun (t : Simulate.trial) -> (t.condition = Simulate.Argus, t.fixed)))
  in
  {
    argus;
    control;
    loc_rate_test = chi2_of argus.loc_rate control.loc_rate;
    loc_time_test =
      Stats.Tests.kruskal_wallis [ argus.loc_time.samples; control.loc_time.samples ];
    fix_rate_test = chi2_of argus.fix_rate control.fix_rate;
    fix_time_test =
      Stats.Tests.kruskal_wallis [ argus.fix_time.samples; control.fix_time.samples ];
    fix_rate_within = Stats.Permutation.test ~rng strata;
  }

(* ------------------------------------------------------------------ *)
(* Per-task breakdown (the paper's task-variety discussion: real vs
   synthetic libraries, branch points vs linear chains). *)

type task_row = {
  tr_task : string;
  tr_n : int;  (** trials of this task, both conditions *)
  tr_loc_argus : float;  (** localization rate with Argus *)
  tr_loc_control : float;
}

let per_task (d : Simulate.dataset) : task_row list =
  let ids =
    List.sort_uniq compare (List.map (fun (t : Simulate.trial) -> t.task_id) d.trials)
  in
  List.map
    (fun id ->
      let mine = List.filter (fun (t : Simulate.trial) -> t.task_id = id) d.trials in
      let rate c =
        let sub = List.filter (fun (t : Simulate.trial) -> t.condition = c) mine in
        if sub = [] then 0.0
        else
          float_of_int (List.length (List.filter (fun (t : Simulate.trial) -> t.localized) sub))
          /. float_of_int (List.length sub)
      in
      {
        tr_task = id;
        tr_n = List.length mine;
        tr_loc_argus = rate Simulate.Argus;
        tr_loc_control = rate Simulate.Control;
      })
    ids

let per_task_to_string (rows : task_row list) : string =
  let lines =
    Printf.sprintf "%-26s %5s %14s %14s" "task" "n" "loc w/ Argus" "loc w/o"
    :: List.map
         (fun r ->
           Printf.sprintf "%-26s %5d %13.0f%% %13.0f%%" r.tr_task r.tr_n
             (100.0 *. r.tr_loc_argus)
             (100.0 *. r.tr_loc_control))
         rows
  in
  String.concat "
" lines

(* ------------------------------------------------------------------ *)
(* Rendering, in the paper's format. *)

let fmt_time secs =
  let s = int_of_float (Float.round secs) in
  Printf.sprintf "%dm%02ds" (s / 60) (s mod 60)

let fmt_rate (r : rate) =
  Printf.sprintf "%.0f%% (CI = [%.0f%%, %.0f%%])" (100.0 *. r.value) (100.0 *. r.ci.lo)
    (100.0 *. r.ci.hi)

let fmt_timing (t : timing) =
  Printf.sprintf "median %s (CI = [%s, %s])" (fmt_time t.median) (fmt_time t.ci.lo)
    (fmt_time t.ci.hi)

let fmt_test name (t : Stats.Tests.test_result) ~n =
  Printf.sprintf "%s: chi(%d,%d) = %.2f, p %s" name t.df n t.statistic
    (if t.p_value < 0.001 then "< 0.001" else Printf.sprintf "= %.3f" t.p_value)

let to_string (r : results) : string =
  let n = r.argus.loc_rate.trials + r.control.loc_rate.trials in
  let lines =
    [
      "Fig 11a — localization rate:";
      Printf.sprintf "  with Argus    %s" (fmt_rate r.argus.loc_rate);
      Printf.sprintf "  without Argus %s" (fmt_rate r.control.loc_rate);
      Printf.sprintf "  %s" (fmt_test "chi-square" r.loc_rate_test ~n);
      "Fig 11b — localization time:";
      Printf.sprintf "  with Argus    %s" (fmt_timing r.argus.loc_time);
      Printf.sprintf "  without Argus %s" (fmt_timing r.control.loc_time);
      Printf.sprintf "  %s" (fmt_test "Kruskal-Wallis" r.loc_time_test ~n);
      "Fig 11c — fix rate:";
      Printf.sprintf "  with Argus    %s" (fmt_rate r.argus.fix_rate);
      Printf.sprintf "  without Argus %s" (fmt_rate r.control.fix_rate);
      Printf.sprintf "  %s" (fmt_test "chi-square" r.fix_rate_test ~n);
      Printf.sprintf "  within-participant permutation (GLMM analog): p = %.3f"
        r.fix_rate_within.p_value;
      "Fig 11d — fix time:";
      Printf.sprintf "  with Argus    %s" (fmt_timing r.argus.fix_time);
      Printf.sprintf "  without Argus %s" (fmt_timing r.control.fix_time);
      Printf.sprintf "  %s" (fmt_test "Kruskal-Wallis" r.fix_time_test ~n);
    ]
  in
  String.concat "\n" lines
