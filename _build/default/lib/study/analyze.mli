(** Statistical analysis of a study dataset: every number §5.1.2 reports
    for Fig. 11 — rates with Wilson CIs and chi-square tests, time
    medians with bootstrap CIs and Kruskal-Wallis tests, plus the
    within-participant permutation test standing in for the paper's
    GLMM. *)

type rate = { successes : int; trials : int; value : float; ci : Stats.Ci.interval }
type timing = { median : float; ci : Stats.Ci.interval; samples : float list }

type condition_summary = {
  condition : Simulate.condition;
  loc_rate : rate;
  loc_time : timing;
  fix_rate : rate;
  fix_time : timing;
}

type results = {
  argus : condition_summary;
  control : condition_summary;
  loc_rate_test : Stats.Tests.test_result;
  loc_time_test : Stats.Tests.test_result;
  fix_rate_test : Stats.Tests.test_result;
  fix_time_test : Stats.Tests.test_result;
  fix_rate_within : Stats.Permutation.result;
}

val analyze : ?seed:int -> Simulate.dataset -> results

(** Per-task localization rates by condition. *)
type task_row = {
  tr_task : string;
  tr_n : int;
  tr_loc_argus : float;
  tr_loc_control : float;
}

val per_task : Simulate.dataset -> task_row list
val per_task_to_string : task_row list -> string

val fmt_time : float -> string

(** Render all four Fig. 11 panels in the paper's format. *)
val to_string : results -> string
