(** The stochastic participant model substituting for the paper's N=25
    humans.  With Argus the participant scans the bottom-up view in its
    inertia order; without, they trace the compiler diagnostic's chain,
    with extra hazards at elisions and branch points.  Constants are
    calibrated to Fig. 11 (see EXPERIMENTS.md). *)

type params = {
  skill_sigma : float;
  time_cap : float;  (** the 10-minute task cap, in seconds *)
  read_sigma : float;
  argus_overhead : float;
  argus_leaf_read : float;
  argus_unfold : float;
  argus_recognize : float;
  argus_recognize_ctx : float;
  argus_second_pass : float;
  control_overhead : float;
  control_trace_step : float;
  control_stray : float;
  control_stray_elision : float;
  control_wander : float;
  control_recognize : float;
  control_blocked_search : float;
  control_blocked_prob : float;
  fix_base : float;
  fix_per_weight : float;
  fix_success : float;
}

val default_params : params

type t = {
  id : int;
  skill : float;  (** multiplicative speed/insight factor, centred on 1 *)
  rng : Stats.Rng.t;
}

val fresh : params:params -> rng:Stats.Rng.t -> int -> t
val duration : t -> params:params -> difficulty:float -> float -> float

type phase_outcome = { succeeded : bool; elapsed : float }

val localize_with_argus : t -> params:params -> Task.t -> phase_outcome
val localize_control : t -> params:params -> Task.t -> phase_outcome

(** Patch construction after a successful localization at [t_loc]; cost
    grows with the root cause's inertia weight, success is skill-bound
    (the §7.1 localize-but-not-fix asymmetry). *)
val fix : t -> params:params -> Task.t -> t_loc:float -> phase_outcome
