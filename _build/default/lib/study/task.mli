(** The seven debugging tasks of the user study (§5.1.1), precomputing
    the structural features the participant model consumes. *)

type t = {
  entry : Corpus.Harness.entry;
  tree : Argus.Proof_tree.t;
  root_cause : Trait_lang.Predicate.t;
  inertia_rank : int;  (** root cause's index in the bottom-up view *)
  n_leaves : int;
  rustc_distance : int;  (** steps from the reported error to the root cause *)
  rustc_hidden : int;  (** "N redundant requirements hidden" *)
  fix_weight : int;  (** inertia weight of the root cause: patch complexity *)
  difficulty : float;
}

val difficulty_of_library : string -> float
val of_entry : Corpus.Harness.entry -> t

(** The seven study tasks, computed once. *)
val all : t list Lazy.t

val count : int
