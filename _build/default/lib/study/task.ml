(** The seven debugging tasks of the user study (§5.1.1).

    "We created seven debugging tasks to cover a range of domains and
    types of trait problems" — three real-library tasks (Axum, Bevy,
    Diesel), plus tasks on the synthetic brew/space libraries mirroring
    them, plus the overflow task.  Each task wraps a corpus entry and
    precomputes the structural features the participant model consumes:
    how far down the bottom-up view the root cause sits, how far the
    compiler's diagnostic is from the root cause, and how much the
    diagnostic elides. *)

type t = {
  entry : Corpus.Harness.entry;
  tree : Argus.Proof_tree.t;
  root_cause : Trait_lang.Predicate.t;
  inertia_rank : int;  (** index of the root cause in Argus's bottom-up view *)
  n_leaves : int;
  rustc_distance : int;  (** inference steps from the reported error to the root cause *)
  rustc_hidden : int;  (** "N redundant requirements hidden" *)
  fix_weight : int;  (** inertia weight of the root cause: patch complexity *)
  difficulty : float;  (** relative task difficulty multiplier *)
}

let difficulty_of_library = function
  | "diesel_lite" -> 1.25  (* deep requirement chains *)
  | "bevy_lite" -> 1.15  (* branch points *)
  | "axum_lite" -> 1.1
  | "brew" -> 0.9  (* synthetic: small, no prior knowledge needed *)
  | "space" -> 0.9
  | _ -> 1.0

let of_entry (entry : Corpus.Harness.entry) : t =
  let program, tree = Corpus.Harness.failed_tree entry in
  let root_cause = Corpus.Harness.root_cause_pred entry in
  let inertia_rank =
    Option.value ~default:(List.length (Argus.Proof_tree.failed_leaves tree))
      (Argus.Heuristics.rank_of_root_cause Argus.Heuristics.by_inertia tree ~root_cause)
  in
  let goal = List.hd (Trait_lang.Program.goals program) in
  let diag = Rustc_diag.Diagnostic.of_tree program goal tree in
  let rustc_distance =
    Option.value ~default:4 (Rustc_diag.Diagnostic.distance_to_root_cause tree diag ~root_cause)
  in
  {
    entry;
    tree;
    root_cause;
    inertia_rank;
    n_leaves = List.length (Argus.Proof_tree.failed_leaves tree);
    rustc_distance;
    rustc_hidden = diag.hidden;
    fix_weight = Argus.Inertia.score root_cause;
    difficulty = difficulty_of_library entry.library;
  }

(** The study's seven tasks, computed once. *)
let all : t list Lazy.t =
  lazy
    (List.filter_map
       (fun id -> Option.map of_entry (Corpus.Suite.find id))
       [
         "diesel-missing-join";
         "bevy-errant-param";
         "bevy-assets-param";
         "axum-bad-return";
         "brew-clashing-recipe";
         "space-raw-payload";
         "ast-overflow";
       ])

let count = 7
