(** Assembling and running simulated study sessions (§5.1.1 Procedure):
    four tasks drawn from seven, two per condition, blocked order,
    ten-minute cap. *)

type condition = Argus | Control

val condition_name : condition -> string

type trial = {
  participant : int;
  task_id : string;
  condition : condition;
  localized : bool;
  t_localize : float;  (** seconds from task start, capped at 600 *)
  fixed : bool;
  t_fix : float;  (** seconds from task start, capped at 600 *)
}

type dataset = { trials : trial list; n_participants : int }

val run_trial : Participant.t -> params:Participant.params -> Task.t -> condition -> trial

val run_session :
  params:Participant.params -> rng:Stats.Rng.t -> Task.t list -> int -> trial list

(** The full study; the paper's final study has [n = 25]. *)
val run : ?params:Participant.params -> ?n:int -> seed:int -> unit -> dataset

val by_condition : dataset -> condition -> trial list
