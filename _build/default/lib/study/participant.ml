(** The stochastic participant model.

    We cannot run the paper's N=25 human study, so we substitute a
    mechanistic model of a debugging session that *consumes the actual
    structures our system produces*: with Argus, the participant scans the
    bottom-up view in its inertia order (so the heuristic's quality
    directly shapes the outcome); without Argus, the participant starts
    from the compiler diagnostic and must manually trace the
    [rustc_distance] inference steps the diagnostic does not show, with
    extra hazards when the diagnostic elides requirements or stops at a
    branch point.

    Constants are calibrated so the aggregate statistics land near the
    paper's Fig. 11 (see EXPERIMENTS.md for paper-vs-measured). *)

type params = {
  (* shared *)
  skill_sigma : float;  (** spread of participant skill (log-normal) *)
  time_cap : float;  (** 10-minute cap, seconds *)
  read_sigma : float;  (** noise on every activity duration *)
  (* with Argus *)
  argus_overhead : float;  (** orienting: problem statement, opening the view *)
  argus_leaf_read : float;  (** reading one bottom-up predicate *)
  argus_unfold : float;  (** unfolding parents for context *)
  argus_recognize : float;  (** P(recognize the root cause on direct read) *)
  argus_recognize_ctx : float;  (** P(recognize after unfolding context) *)
  argus_second_pass : float;  (** P(recognize on a second pass over the view) *)
  (* without Argus *)
  control_overhead : float;  (** reading code + the full diagnostic *)
  control_trace_step : float;  (** manually tracing one inference step *)
  control_stray : float;  (** P(going astray at each manual step) *)
  control_stray_elision : float;  (** additional straying when requirements are hidden *)
  control_wander : float;  (** recovery time after going astray *)
  control_recognize : float;  (** P(recognizing the root cause when reached) *)
  control_blocked_search : float;
      (** time to find an absent trait via docs/source when the diagnostic
          stops at a branch point (§5.1.2: only 29% even identified it) *)
  control_blocked_prob : float;  (** P(that search succeeds) *)
  (* fixing *)
  fix_base : float;  (** base patch time *)
  fix_per_weight : float;  (** extra seconds per unit of inertia weight *)
  fix_success : float;  (** P(a constructed patch is actually right) *)
}

let default_params =
  {
    skill_sigma = 0.35;
    time_cap = 600.0;
    read_sigma = 0.45;
    argus_overhead = 105.0;
    argus_leaf_read = 22.0;
    argus_unfold = 55.0;
    argus_recognize = 0.47;
    argus_recognize_ctx = 0.72;
    argus_second_pass = 0.22;
    control_overhead = 100.0;
    control_trace_step = 95.0;
    control_stray = 0.34;
    control_stray_elision = 0.15;
    control_wander = 170.0;
    control_recognize = 0.82;
    control_blocked_search = 170.0;
    control_blocked_prob = 0.17;
    fix_base = 130.0;
    fix_per_weight = 30.0;
    fix_success = 0.68;
  }

type t = {
  id : int;
  skill : float;  (** multiplicative speed/insight factor, centred on 1 *)
  rng : Stats.Rng.t;
}

let fresh ~params ~rng id =
  let rng = Stats.Rng.split rng in
  { id; skill = Float.exp (Stats.Rng.gaussian rng ~mu:0.0 ~sigma:params.skill_sigma); rng }

(** One activity's duration: log-normal noise around
    [base * difficulty / skill]. *)
let duration p ~params ~difficulty base =
  Stats.Rng.log_normal p.rng
    ~mu:(Float.log (base *. difficulty /. p.skill))
    ~sigma:params.read_sigma

type phase_outcome = { succeeded : bool; elapsed : float }

(** Localization with Argus: scan the bottom-up view in inertia order;
    recognize the root cause when read (perhaps after unfolding parents);
    a second pass models revisiting after exhausting the list. *)
let localize_with_argus p ~params (task : Task.t) : phase_outcome =
  let d = task.difficulty in
  let t = ref (duration p ~params ~difficulty:d params.argus_overhead) in
  let found = ref false in
  let attempt_at_leaf () =
    if Stats.Rng.bernoulli p.rng (params.argus_recognize *. Float.min 1.2 p.skill) then
      found := true
    else begin
      (* unfold ancestors for context *)
      t := !t +. duration p ~params ~difficulty:d params.argus_unfold;
      if Stats.Rng.bernoulli p.rng params.argus_recognize_ctx then found := true
    end
  in
  (* first pass down the sorted leaves *)
  let rank = min task.inertia_rank (task.n_leaves - 1) in
  let i = ref 0 in
  while (not !found) && !i < task.n_leaves && !t < params.time_cap do
    t := !t +. duration p ~params ~difficulty:d params.argus_leaf_read;
    if !i = rank then attempt_at_leaf ();
    incr i
  done;
  (* second pass: slower re-examination of everything *)
  if (not !found) && !t < params.time_cap then begin
    t :=
      !t
      +. duration p ~params ~difficulty:d
           (params.argus_unfold *. float_of_int (max 1 task.n_leaves) /. 2.0);
    if Stats.Rng.bernoulli p.rng params.argus_second_pass then found := true
  end;
  { succeeded = (!found && !t <= params.time_cap); elapsed = Float.min !t params.time_cap }

(** Localization from the compiler diagnostic alone. *)
let localize_control p ~params (task : Task.t) : phase_outcome =
  let d = task.difficulty in
  let t = ref (duration p ~params ~difficulty:d params.control_overhead) in
  let found = ref false in
  if task.rustc_distance >= 2 then begin
    (* Branch point: the key trait is absent from the diagnostic (§2.3).
       The participant must discover it from documentation or library
       source. *)
    t := !t +. duration p ~params ~difficulty:d params.control_blocked_search;
    if
      Stats.Rng.bernoulli p.rng (params.control_blocked_prob *. Float.min 3.0 (p.skill ** 3.0))
      && !t < params.time_cap
    then found := true
  end
  else begin
    (* Linear chain: trace the steps the diagnostic implies. *)
    let stray_p =
      (* going astray is strongly skill-dependent: manual chain-tracing is
         exactly the expertise that separates the study's Zulip experts
         from its mailing-list learners *)
      (params.control_stray
      +. (if task.rustc_hidden > 0 then params.control_stray_elision else 0.0))
      /. (p.skill ** 2.5)
    in
    let steps = max 1 task.rustc_distance in
    let step = ref 0 in
    while (not !found) && !t < params.time_cap do
      t := !t +. duration p ~params ~difficulty:d params.control_trace_step;
      if Stats.Rng.bernoulli p.rng stray_p then
        (* went astray; wander and recover *)
        t := !t +. duration p ~params ~difficulty:d params.control_wander
      else begin
        incr step;
        if !step >= steps then
          if Stats.Rng.bernoulli p.rng (params.control_recognize *. Float.min 1.2 p.skill)
          then found := true
          else step := max 0 (!step - 1)
      end
    done
  end;
  { succeeded = (!found && !t <= params.time_cap); elapsed = Float.min !t params.time_cap }

(** Fixing, given a successful localization at [t_loc].  Patch time grows
    with the inertia weight of the root cause — the very patch-complexity
    model behind the heuristic (§3.3). *)
let fix p ~params (task : Task.t) ~t_loc : phase_outcome =
  let d = task.difficulty in
  let base = params.fix_base +. (params.fix_per_weight *. float_of_int task.fix_weight) in
  let cost = duration p ~params ~difficulty:d base in
  let t = t_loc +. cost in
  (* Constructing a correct patch is skill-bound: this reproduces the
     paper's asymmetry where nearly all control-condition localizers also
     fixed (they were self-selected skilled participants), while many
     Argus-condition localizers could localize but not fix (§7.1). *)
  (* Whether this participant can construct the right patch at all is
     competence-bound, not time-bound: §7.1 observes that "many
     participants could use Argus to successfully localize an error, but
     still fail to fix the error".  The sharp skill exponent reproduces
     the asymmetry where the control condition's localizers (a
     self-selected skilled minority) convert to fixes at a higher rate. *)
  let competent =
    Stats.Rng.bernoulli p.rng (Float.min 0.95 (params.fix_success *. (p.skill ** 2.0)))
  in
  if competent && t <= params.time_cap then { succeeded = true; elapsed = t }
  else { succeeded = false; elapsed = Float.min t params.time_cap }
