lib/study/task.mli: Argus Corpus Lazy Trait_lang
