lib/study/analyze.ml: Float List Printf Simulate Stats String
