lib/study/participant.ml: Float Stats Task
