lib/study/simulate.ml: Lazy List Participant Stats Task
