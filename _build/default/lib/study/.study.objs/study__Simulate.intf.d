lib/study/simulate.mli: Participant Stats Task
