lib/study/participant.mli: Stats Task
