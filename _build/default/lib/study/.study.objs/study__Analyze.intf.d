lib/study/analyze.mli: Simulate Stats
