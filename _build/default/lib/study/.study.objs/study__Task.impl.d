lib/study/task.ml: Argus Corpus Lazy List Option Rustc_diag Trait_lang
