(** [space]: the paper's second bespoke synthetic library (§5.1.1).

    "space provides an API to construct intergalactic flight plans, with
    invalid flight plans also ruled out by traits."

    space mirrors {e Bevy}: a flight plan is registered via marker-
    separated [IntoMission] impls — one for plain functions whose
    parameters are mission equipment, one for hand-rolled [Mission]
    types — so the characteristic failure is a branch point that the
    compiler's static diagnostic cannot descend past. *)

let prelude =
  {|
extern crate space {
  struct MissionControl;
  struct Launchpad;
  struct IsRouteFn;
  struct Cargo<T>;
  struct CrewOf<N>;
  struct FuelTank<G>;
  struct Antimatter;
  struct Hydrazine;

  trait Payload {}
  trait Grade {}
  trait Equipment {}
  trait Mission {}
  trait RouteFn<Marker> {}
  #[on_unimplemented("cannot be scheduled as a mission")]
  trait IntoMission<Marker> {}
  trait Fn<Args> { type Output; }

  // equipment: what a route function may request
  impl<T> Equipment for Cargo<T> where T: Payload {}
  impl<N> Equipment for CrewOf<N> {}
  impl<G> Equipment for FuelTank<G> where G: Grade {}

  impl Grade for Antimatter {}
  impl Grade for Hydrazine {}

  // route functions: each parameter must be equipment
  impl<Out, F> RouteFn<fn() -> Out> for F where F: Fn<()> {}
  impl<E0, Out, F> RouteFn<fn(E0) -> Out> for F
    where F: Fn<(E0,)>, E0: Equipment {}
  impl<E0, E1, Out, F> RouteFn<fn(E0, E1) -> Out> for F
    where F: Fn<(E0, E1)>, E0: Equipment, E1: Equipment {}

  // the marker-separated branch (mirrors bevy's IntoSystem)
  impl<Marker, F> IntoMission<(IsRouteFn, Marker)> for F
    where F: RouteFn<Marker> {}
  impl<M> IntoMission<()> for M where M: Mission {}
}
|}

(** Fault (mirrors the Bevy errant parameter): the route function takes
    the raw payload [Supplies] instead of [Cargo<Supplies>]; [Supplies]
    is not [Equipment], but the diagnostic stops at the [IntoMission]
    branch point. *)
let raw_payload =
  prelude
  ^ {|
struct Supplies;
impl Payload for Supplies {}
fn resupply_run(Supplies) -> ();
goal fn[resupply_run]: IntoMission<_> from "the call to .schedule(resupply_run)";
|}

(** Fault: fuel of an unregistered grade — the failing leaf is
    [Kerosene: Grade], two hops below the branch point. *)
let bad_fuel =
  prelude
  ^ {|
struct Kerosene;
fn long_haul(FuelTank<Kerosene>, CrewOf<i32>) -> ();
goal fn[long_haul]: IntoMission<_> from "the call to .schedule(long_haul)";
|}

(** A valid flight plan, as a sanity baseline. *)
let ok_plan =
  prelude
  ^ {|
struct Supplies;
impl Payload for Supplies {}
fn resupply_run(Cargo<Supplies>, FuelTank<Hydrazine>) -> ();
goal fn[resupply_run]: IntoMission<_> from "the call to .schedule(resupply_run)";
|}
