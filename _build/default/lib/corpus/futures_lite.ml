(** [futures_lite]: a model of async Rust's [Future]/[Send] trait
    machinery — the second great generator of inscrutable trait errors
    after the framework DSLs.

    The load-bearing shapes:
    - [Future] has an associated [Output] type, so combinator chains
      ([Map], [AndThen]) produce projection-heavy obligations like
      iterator adapters;
    - executors require [F: Future + Send]; a future is [Send] only if
      the state it holds across an await point is — modeled by making a
      future's state an explicit type parameter with structural [Send]
      impls, so a single [Rc<T>] deep in the state breaks
      [spawn]'s bound exactly as in tokio. *)

let prelude =
  {|
extern crate futures {
  trait Future { type Output; }
  trait Send {}
  trait Spawnable {}
  trait Fn<Args> { type Output; }

  // leaf futures: Ready<T> resolves immediately to T
  struct Ready<T>;
  impl<T> Future for Ready<T> { type Output = T; }

  // combinators
  struct Map<Fut, F>;
  impl<Fut, F, B> Future for Map<Fut, F>
    where Fut: Future,
          F: Fn<(<Fut as Future>::Output,), Output = B> {
    type Output = B;
  }
  struct AndThen<Fut, F>;
  impl<Fut, F, NextFut> Future for AndThen<Fut, F>
    where Fut: Future,
          F: Fn<(<Fut as Future>::Output,), Output = NextFut>,
          NextFut: Future {
    type Output = <NextFut as Future>::Output;
  }

  // an async block is a generator holding State across its awaits
  struct AsyncBlock<State, Out>;
  impl<State, Out> Future for AsyncBlock<State, Out> { type Output = Out; }
  impl<State, Out> Send for AsyncBlock<State, Out> where State: Send {}

  // structural Send (auto-trait approximation)
  impl Send for i32 {}
  impl Send for usize {}
  impl Send for String {}
  impl Send for () {}
  impl<T> Send for Ready<T> where T: Send {}
  impl<A, B> Send for (A, B) where A: Send, B: Send {}

  // the executor: only Send futures can be spawned onto the pool
  impl<F> Spawnable for F where F: Future, F: Send {}
}

extern crate std {
  struct Rc<T>;
  struct Arc<T>;
  struct Mutex<T>;
  struct Vec<T>;
  // Rc is deliberately !Send; Arc<T> and Mutex<T> forward
  impl<T> Send for Arc<T> where T: Send {}
  impl<T> Send for Mutex<T> where T: Send {}
  impl<T> Send for Vec<T> where T: Send {}
}
|}

(** Fault: the classic "future cannot be sent between threads safely" —
    an [Rc] held across an await.  The root cause
    [Rc<Vec<String>>: Send] sits below [AsyncBlock]'s [Send] bound,
    below [Spawnable]. *)
let rc_across_await =
  prelude
  ^ {|
struct Db;
impl Send for Db {}
goal AsyncBlock<(Db, Rc<Vec<String>>), usize>: Spawnable
  from "the call to pool.spawn(handle_request())";
|}

(** The corrected version: [Arc] instead of [Rc]. *)
let arc_across_await =
  prelude
  ^ {|
struct Db;
impl Send for Db {}
goal AsyncBlock<(Db, Arc<Vec<String>>), usize>: Spawnable
  from "the call to pool.spawn(handle_request())";
|}

(** Fault: a combinator chain whose closure consumes the wrong output
    type — projection mismatch inside [Map]'s [Fn] bound, mirroring the
    iterator shape but through [Future::Output]. *)
let map_wrong_output =
  prelude
  ^ {|
fn summarize(String) -> usize;
goal Map<Ready<i32>, fn[summarize]>: Future from "the call to .map(summarize)";
|}

(** Fault: [and_then] with a continuation that does not return a future
    at all. *)
let and_then_not_future =
  prelude
  ^ {|
fn fetch_len(String) -> usize;
goal AndThen<Ready<String>, fn[fetch_len]>: Future
  from "the call to .and_then(fetch_len)";
|}

(** A correct combinator chain, as a sanity baseline. *)
let ok_chain =
  prelude
  ^ {|
fn to_len(String) -> usize;
fn fetch(usize) -> Ready<String>;
goal Map<AndThen<Ready<usize>, fn[fetch]>, fn[to_len]>: Future
  from "the call to fetch-then-measure";
|}
