(** [serde_lite]: a model of serde's derive-generated trait machinery.

    Serde errors are the most common "requirement chain" errors in the
    Rust ecosystem after the ORM/web-framework ones: a derived
    [Serialize] impl for a struct requires [Serialize] for every field
    type, recursively through the container generics ([Vec<T>],
    [Option<T>], [HashMap<K, V>], [Box<T>]).  A single non-serializable
    field deep inside a nested value produces exactly the long
    "required for … to implement …" chains of §2.1, without any
    associated types — a useful contrast to the Diesel shape.

    Derives are modeled the way serde's expansion actually behaves: a
    struct's impl carries one where-clause per field type. *)

let prelude =
  {|
extern crate serde {
  trait Serialize {}
  trait Deserialize {}
  trait Serializer {}
  trait Deserializer {}

  impl Serialize for i32 {}
  impl Serialize for usize {}
  impl Serialize for f64 {}
  impl Serialize for bool {}
  impl Serialize for String {}
  impl Serialize for () {}

  impl Deserialize for i32 {}
  impl Deserialize for usize {}
  impl Deserialize for f64 {}
  impl Deserialize for bool {}
  impl Deserialize for String {}
}

extern crate std {
  struct Vec<T>;
  struct Option<T>;
  struct Box<T>;
  struct HashMap<K, V>;
  struct Rc<T>;

  impl<T> Serialize for Vec<T> where T: Serialize {}
  impl<T> Serialize for Option<T> where T: Serialize {}
  impl<T> Serialize for Box<T> where T: Serialize {}
  impl<K, V> Serialize for HashMap<K, V> where K: Serialize, V: Serialize {}

  impl<T> Deserialize for Vec<T> where T: Deserialize {}
  impl<T> Deserialize for Option<T> where T: Deserialize {}
  impl<T> Deserialize for Box<T> where T: Deserialize {}
  impl<K, V> Deserialize for HashMap<K, V> where K: Deserialize, V: Deserialize {}
}

extern crate serde_json {
  struct Value;
  impl Serialize for Value {}
  impl Deserialize for Value {}
}
|}

(** An application data model with derives; [Session] holds a raw OS
    handle that (correctly) has no [Serialize] impl. *)
let app_model =
  {|
struct UserId;
struct User;
struct Profile;
struct Session;
struct RawFd;

// #[derive(Serialize)] expansions: one bound per field type
impl Serialize for UserId {}
impl Serialize for User
  where UserId: Serialize, String: Serialize, Profile: Serialize {}
impl Serialize for Profile
  where Vec<String>: Serialize, Option<Session>: Serialize {}
// Session holds a RawFd; its derive was written, but RawFd has no impl
impl Serialize for Session where RawFd: Serialize {}
|}

(** Fault: serializing a [User] fails five requirements deep because
    [Session]'s [RawFd] field is not serializable. *)
let missing_field_impl =
  prelude ^ app_model
  ^ {|
goal Vec<User>: Serialize from "the call to serde_json::to_string(&users)";
|}

(** Fault: a [HashMap] key type without [Serialize]. *)
let bad_map_key =
  prelude
  ^ {|
struct Ip;
struct Packet;
impl Serialize for Packet {}
goal HashMap<Ip, Vec<Packet>>: Serialize from "the call to serde_json::to_string(&by_ip)";
|}

(** Fault: asymmetric derives — the type serializes but was never given
    [Deserialize], a classic round-trip surprise. *)
let missing_deserialize =
  prelude
  ^ {|
struct Config;
impl Serialize for Config {}
goal Option<Box<Config>>: Deserialize from "the call to serde_json::from_str(&s)";
|}

(** The corrected model: [Session] is skipped from serialization
    ([#[serde(skip)]]), so its impl no longer requires [RawFd]. *)
let fixed_model =
  prelude
  ^ {|
struct UserId;
struct User;
struct Profile;
struct Session;
struct RawFd;

impl Serialize for UserId {}
impl Serialize for User
  where UserId: Serialize, String: Serialize, Profile: Serialize {}
// Profile's Session field is #[serde(skip)]: no bound on Session
impl Serialize for Profile where Vec<String>: Serialize {}

goal Vec<User>: Serialize from "the call to serde_json::to_string(&users)";
|}
