(** [axum_lite]: a model of the Axum web framework's handler traits.

    A handler is a function whose parameters are request *extractors* and
    whose return type is a response.  Two trait-level rules generate the
    classic Axum errors:
    - every leading parameter must implement [FromRequestParts]; only the
      *final* parameter may consume the body ([FromRequest]);
    - the return type must implement [IntoResponse].

    Like Bevy, Axum separates overlapping impls with marker types: the
    blanket "any parts-extractor is an extractor" impl carries the
    [ViaParts] marker, the body extractors carry [ViaRequest] — a second
    real-world instance of the §2.3 inferred-marker pattern.  [Handler]
    is implemented for functions through blanket impls over [Fn], so
    failures surface as "fn item is not a valid axum handler". *)

let prelude =
  {|
extern crate axum {
  struct Router;
  struct Request;
  struct Response;
  struct Json<T>;
  struct UrlPath<T>;
  struct State<S>;
  struct Html<T>;
  struct StatusCode;
  struct ViaParts;
  struct ViaRequest;

  #[on_unimplemented("is not a valid axum handler")]
  trait Handler<T, S> {}
  trait FromRequest<S, M> {}
  trait FromRequestParts<S> {}
  trait IntoResponse {}
  trait Serialize {}
  trait Deserialize {}
  trait Fn<Args> { type Output; }

  // body extractors consume the request
  impl<T, S> FromRequest<S, ViaRequest> for Json<T> where T: Deserialize {}
  // any parts-extractor can run as a final extractor too (marker-separated
  // from the impls above, mirroring axum's private::ViaParts)
  impl<T, S> FromRequest<S, ViaParts> for T where T: FromRequestParts<S> {}

  // parts extractors
  impl<T, S> FromRequestParts<S> for UrlPath<T> where T: Deserialize {}
  impl<S> FromRequestParts<S> for State<S> {}

  // responses
  impl IntoResponse for Response {}
  impl IntoResponse for StatusCode {}
  impl<T> IntoResponse for Json<T> where T: Serialize {}
  impl<T> IntoResponse for Html<T> {}
  impl IntoResponse for String {}
  impl IntoResponse for () {}

  // serde instances for primitives
  impl Deserialize for i32 {}
  impl Deserialize for usize {}
  impl Deserialize for String {}
  impl Serialize for i32 {}
  impl Serialize for usize {}
  impl Serialize for String {}

  // handlers: functions of 0, 1, or 2 extractors
  impl<F, Res, S> Handler<(Res,), S> for F
    where F: Fn<(), Output = Res>, Res: IntoResponse {}
  impl<F, Res, T1, M1, S> Handler<(Res, T1, M1), S> for F
    where F: Fn<(T1,), Output = Res>,
          T1: FromRequest<S, M1>,
          Res: IntoResponse {}
  impl<F, Res, T1, T2, M2, S> Handler<(Res, T1, T2, M2), S> for F
    where F: Fn<(T1, T2), Output = Res>,
          T1: FromRequestParts<S>,
          T2: FromRequest<S, M2>,
          Res: IntoResponse {}
}
|}

(** Fault: the handler returns a bare user type with no [IntoResponse]
    impl (forgot to wrap it in [Json<..>]). *)
let bad_return =
  prelude
  ^ {|
struct User;
impl Deserialize for User {}
fn get_user(UrlPath<usize>) -> User;
goal fn[get_user]: Handler<_, ()> from "the call to .route(\"/users/:id\", get(get_user))";
|}

(** Fault: the body extractor ([Json]) is placed before a parts
    extractor ([UrlPath]); [Json<T>] does not implement
    [FromRequestParts], so the two-argument handler impl rejects it. *)
let body_extractor_first =
  prelude
  ^ {|
struct CreateUser;
impl Deserialize for CreateUser {}
fn create_user(Json<CreateUser>, UrlPath<usize>) -> StatusCode;
goal fn[create_user]: Handler<_, ()> from "the call to .route(\"/users\", post(create_user))";
|}

(** Fault: extracting [Json<T>] for a type that is not [Deserialize]. *)
let missing_deserialize =
  prelude
  ^ {|
struct LoginForm;
fn login(Json<LoginForm>) -> StatusCode;
goal fn[login]: Handler<_, ()> from "the call to .route(\"/login\", post(login))";
|}

(** A correct handler, as a sanity baseline. *)
let ok_handler =
  prelude
  ^ {|
struct User;
impl Deserialize for User {}
impl Serialize for User {}
fn get_user(UrlPath<usize>) -> Json<User>;
goal fn[get_user]: Handler<_, ()> from "the call to .route(\"/users/:id\", get(get_user))";
|}
