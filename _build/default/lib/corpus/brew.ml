(** [brew]: one of the paper's two bespoke synthetic libraries (§5.1.1).

    "brew provides an API for creating potion recipes from various plant
    ingredients, with invalid recipes ruled out by trait-based rules.
    These APIs closely mirror the designs of Axum, Bevy, and Diesel."

    brew mirrors {e Diesel}: recipe validity flows through an
    associated-type verdict ([Affinity::Compat]), so the characteristic
    failure is an E0271-style projection mismatch deep in a requirement
    chain, with enough intermediate steps to trigger rustc's elision. *)

let prelude =
  {|
extern crate brew {
  // type-level verdicts
  struct Compat;
  struct Clash;

  // potion construction
  struct Potion<R>;
  struct Recipe<A, B>;
  struct Infusion<I>;
  struct Cauldron;
  struct Vial;

  trait Plant {}
  trait Ingredient { type Essence; }
  trait Essence {}
  // how do two ingredients interact?  type-level table, like diesel's
  // AppearsInFromClause counts
  trait Affinity<Other> { type Compat; }
  trait Brewable {}
  trait Bottleable {}
  trait Drinkable<Container> {}

  // an infusion of a plant is an ingredient
  impl<I> Ingredient for Infusion<I> where I: Plant { type Essence = I; }

  // a recipe brews iff both ingredients exist and they are compatible
  impl<A, B> Brewable for Recipe<A, B>
    where A: Ingredient,
          B: Ingredient,
          A: Affinity<B, Compat = Compat> {}

  // potions bottle iff their recipe brews
  impl<R> Bottleable for Potion<R> where R: Brewable {}
  impl<R, C> Drinkable<C> for Potion<R> where Potion<R>: Bottleable {}
}
|}

(** A small apothecary of plants and their affinity table. *)
let garden =
  {|
struct Sunflower;
struct Nightshade;
struct Chamomile;

impl Plant for Sunflower {}
impl Plant for Nightshade {}
impl Plant for Chamomile {}

impl Affinity<Infusion<Sunflower>> for Infusion<Sunflower> { type Compat = Compat; }
impl Affinity<Infusion<Chamomile>> for Infusion<Sunflower> { type Compat = Compat; }
impl Affinity<Infusion<Nightshade>> for Infusion<Sunflower> { type Compat = Clash; }
impl Affinity<Infusion<Sunflower>> for Infusion<Chamomile> { type Compat = Compat; }
impl Affinity<Infusion<Chamomile>> for Infusion<Chamomile> { type Compat = Compat; }
impl Affinity<Infusion<Nightshade>> for Infusion<Chamomile> { type Compat = Clash; }
impl Affinity<Infusion<Sunflower>> for Infusion<Nightshade> { type Compat = Clash; }
impl Affinity<Infusion<Chamomile>> for Infusion<Nightshade> { type Compat = Clash; }
impl Affinity<Infusion<Nightshade>> for Infusion<Nightshade> { type Compat = Compat; }
|}

(** Fault (mirrors the Diesel missing join): brewing sunflower with
    nightshade — the affinity verdict is [Clash], failing an E0271-style
    projection deep below the [Drinkable] obligation. *)
let clashing_recipe =
  prelude ^ garden
  ^ {|
goal Potion<Recipe<Infusion<Sunflower>, Infusion<Nightshade>>>: Drinkable<Vial>
  from "the call to .drink(vial)";
|}

(** Fault: an ingredient that is not a plant (no [Plant] impl means no
    [Ingredient] for its infusion). *)
let not_a_plant =
  prelude ^ garden
  ^ {|
struct Granite;
goal Potion<Recipe<Infusion<Granite>, Infusion<Chamomile>>>: Drinkable<Vial>
  from "the call to .drink(vial)";
|}

(** A valid brew, as a sanity baseline. *)
let ok_brew =
  prelude ^ garden
  ^ {|
goal Potion<Recipe<Infusion<Sunflower>, Infusion<Chamomile>>>: Drinkable<Vial>
  from "the call to .drink(vial)";
|}
