(** [diesel_lite]: a model of the Diesel query builder's trait machinery
    (§2.1), written in L_TRAIT surface syntax.

    Faithful to the shape that matters for trait errors: statically
    checked queries where every selected or filtered column must
    "appear on" the query's from-clause, enforced through the
    [AppearsInFromClause::Count] associated type ([Once]/[Never]).
    Real Diesel computes [Count] by type-level arithmetic; we enumerate
    the instances, which produces identical inference trees. *)

(** The library itself (the "25,771 lines of code" stand-in). *)
let prelude =
  {|
extern crate diesel {
  // type-level counters for how often a table appears in a from clause
  struct Once;
  struct Never;

  // SQL type tags
  struct Integer;
  struct Text;

  // query fragments
  struct Eq<L, R>;
  struct Grouped<T>;
  struct WhereClause<W>;
  struct NoWhereClause;
  struct FromClause<F>;
  struct SelectClause<S>;
  struct NoDistinctClause;
  struct InnerJoin<A, B>;
  struct SelectStatement<From, Select, Distinct, Where>;
  struct PgConnection;

  trait Table {}
  trait Column {
    type Table;
    type SqlType;
  }
  trait Expression {
    type SqlType;
  }
  // how many times does table T appear in Self (a from clause)?
  trait AppearsInFromClause<T> {
    type Count;
  }
  trait AppearsOnTable<QS> {}
  trait ValidWhereClause<QS> {}
  trait Query {}
  trait AsQuery {}
  trait LoadQuery<Conn, U> {}
  trait ExpressionMethods {}

  // expressions built from compatible sub-expressions
  impl<L, R> Expression for Eq<L, R>
    where L: Expression, R: Expression {
    type SqlType = Integer;
  }
  impl<T> Expression for Grouped<T> where T: Expression {
    type SqlType = Integer;
  }

  // an expression appears on a table iff its parts do
  impl<L, R, QS> AppearsOnTable<QS> for Eq<L, R>
    where Eq<L, R>: Expression,
          L: AppearsOnTable<QS>,
          R: AppearsOnTable<QS> {}
  impl<T, QS> AppearsOnTable<QS> for Grouped<T>
    where Grouped<T>: Expression,
          T: AppearsOnTable<QS> {}

  // a where clause is valid iff its expression appears on the from clause
  impl<W, QS> ValidWhereClause<QS> for WhereClause<W>
    where W: AppearsOnTable<QS> {}
  impl<QS> ValidWhereClause<QS> for NoWhereClause {}

  // select statements are queries when their pieces line up
  impl<F, S, D, W> Query for SelectStatement<FromClause<F>, S, D, W>
    where W: ValidWhereClause<F> {}
  impl<F, S, D, W> AsQuery for SelectStatement<FromClause<F>, S, D, W>
    where SelectStatement<FromClause<F>, S, D, W>: Query {}
  impl<F, S, D, W, Conn, U> LoadQuery<Conn, U> for SelectStatement<FromClause<F>, S, D, W>
    where SelectStatement<FromClause<F>, S, D, W>: AsQuery {}
}
|}

(** A two-table schema, [users] and [posts], as the schema macro would
    generate it: table markers, column markers, and the
    [AppearsInFromClause] counting instances. *)
let schema =
  {|
mod users {
  struct UsersTable;
  struct UsersId;
  struct UsersName;
}
mod posts {
  struct PostsTable;
  struct PostsId;
  struct PostsUserId;
}

impl Table for UsersTable {}
impl Table for PostsTable {}

impl Column for UsersId { type Table = UsersTable; type SqlType = Integer; }
impl Column for UsersName { type Table = UsersTable; type SqlType = Text; }
impl Column for PostsId { type Table = PostsTable; type SqlType = Integer; }
impl Column for PostsUserId { type Table = PostsTable; type SqlType = Integer; }

impl Expression for UsersId { type SqlType = Integer; }
impl Expression for UsersName { type SqlType = Text; }
impl Expression for PostsId { type SqlType = Integer; }
impl Expression for PostsUserId { type SqlType = Integer; }

// appearance counting: a bare table contains itself once, others never
impl AppearsInFromClause<UsersTable> for UsersTable { type Count = Once; }
impl AppearsInFromClause<PostsTable> for UsersTable { type Count = Never; }
impl AppearsInFromClause<UsersTable> for PostsTable { type Count = Never; }
impl AppearsInFromClause<PostsTable> for PostsTable { type Count = Once; }

// the join contains each of its tables once
impl AppearsInFromClause<UsersTable> for InnerJoin<UsersTable, PostsTable> { type Count = Once; }
impl AppearsInFromClause<PostsTable> for InnerJoin<UsersTable, PostsTable> { type Count = Once; }

// a column appears on a query source iff its table appears exactly once
impl<QS> AppearsOnTable<QS> for UsersId
  where QS: AppearsInFromClause<UsersTable, Count = Once> {}
impl<QS> AppearsOnTable<QS> for UsersName
  where QS: AppearsInFromClause<UsersTable, Count = Once> {}
impl<QS> AppearsOnTable<QS> for PostsId
  where QS: AppearsInFromClause<PostsTable, Count = Once> {}
impl<QS> AppearsOnTable<QS> for PostsUserId
  where QS: AppearsInFromClause<PostsTable, Count = Once> {}
|}

(** §2.1's program: select from [users] filtered on [posts::id] without
    joining [posts].  The root cause is the [eq(posts::id)] expression,
    whose column requires [UsersTable: AppearsInFromClause<PostsTable>]
    to count [Once] — but it counts [Never]. *)
let missing_join =
  prelude ^ schema
  ^ {|
goal SelectStatement<FromClause<UsersTable>,
                     SelectClause<(UsersId, PostsId)>,
                     NoDistinctClause,
                     WhereClause<Grouped<Eq<UsersId, PostsId>>>>
       : LoadQuery<PgConnection, (i32, String)>
  from "the call to .load(conn)";
|}

(** The corrected program: the same query over an inner join. *)
let with_join =
  prelude ^ schema
  ^ {|
goal SelectStatement<FromClause<InnerJoin<UsersTable, PostsTable>>,
                     SelectClause<(UsersId, PostsId)>,
                     NoDistinctClause,
                     WhereClause<Grouped<Eq<UsersId, PostsId>>>>
       : LoadQuery<PgConnection, (i32, String)>
  from "the call to .load(conn)";
|}

(** Fault: filtering on a column of a table that was joined, but
    selecting a column from a third source that is absent entirely
    (posts columns used with a posts-only from clause and a users
    column in the filter). *)
let wrong_table_filter =
  prelude ^ schema
  ^ {|
goal SelectStatement<FromClause<PostsTable>,
                     SelectClause<(PostsId,)>,
                     NoDistinctClause,
                     WhereClause<Grouped<Eq<PostsUserId, UsersId>>>>
       : LoadQuery<PgConnection, (i32,)>
  from "the call to .load(conn)";
|}

(** Fault: an expression whose sub-expression is not an [Expression] at
    all (a raw table used as a column). *)
let non_expression_operand =
  prelude ^ schema
  ^ {|
goal SelectStatement<FromClause<UsersTable>,
                     SelectClause<(UsersId,)>,
                     NoDistinctClause,
                     WhereClause<Grouped<Eq<UsersId, UsersTable>>>>
       : LoadQuery<PgConnection, (i32,)>
  from "the call to .load(conn)";
|}
