(** The remaining motivating and miscellaneous corpus programs:
    §2.2's accidental infinite recursion, plus std-flavoured programs
    (iterator adapters, orphan-rule collisions) that round out the
    17-program evaluation suite. *)

(** §2.2: an AST datatype generic over node-associated data.  The impl
    pair forms the cycle of Fig. 3c:
    [EmptyNode: AstAssocs] ⇒ [EmptyNode: AssocData<EmptyNode>] ⇒
    [EmptyNode: AstAssocs] ⇒ … (E0275). *)
let ast_overflow =
  {|
trait AssocData<A> {}
trait AstAssocs {
  type Data;
}
struct EmptyNode;
struct Statement<A>;

impl<Data> AstAssocs for Data where Data: AssocData<Data> {
  type Data = Data;
}
impl<A> AssocData<A> for EmptyNode where A: AstAssocs {}

goal EmptyNode: AstAssocs from "let s: Statement<EmptyNode> = Statement(..)";
|}

(** The fixed version of the recursion: a concrete (non-blanket)
    [AstAssocs] impl for the node type breaks the cycle. *)
let ast_fixed =
  {|
trait AssocData<A> {}
trait AstAssocs {
  type Data;
}
struct EmptyNode;
struct Statement<A>;

impl AstAssocs for EmptyNode {
  type Data = EmptyNode;
}
impl<A> AssocData<A> for EmptyNode where A: AstAssocs {}

goal EmptyNode: AstAssocs from "let s: Statement<EmptyNode> = Statement(..)";
|}

(** A std-flavoured iterator-adapter library. *)
let iter_prelude =
  {|
extern crate std {
  trait Iterator {
    type Item;
  }
  trait Fn<Args> { type Output; }
  trait Sum {}
  struct Map<I, F>;
  struct Filter<I, P>;
  struct Counter;

  impl<I, F, B> Iterator for Map<I, F>
    where I: Iterator,
          F: Fn<(<I as Iterator>::Item,), Output = B> {
    type Item = B;
  }
  impl<I, P> Iterator for Filter<I, P>
    where I: Iterator,
          P: Fn<(<I as Iterator>::Item,), Output = bool> {
    type Item = <I as Iterator>::Item;
  }
  impl Sum for i32 {}
  impl Sum for f64 {}
}
|}

(** Fault: mapping with a function of the wrong input type —
    [Counter]'s items are [i32] but the closure takes [String]. *)
let map_wrong_input =
  iter_prelude
  ^ {|
impl Iterator for Counter { type Item = i32; }
fn stringify(String) -> String;
goal Map<Counter, fn[stringify]>: Iterator from "the call to .map(stringify)";
|}

(** Fault: filtering with a predicate that does not return [bool]. *)
let filter_not_bool =
  iter_prelude
  ^ {|
impl Iterator for Counter { type Item = i32; }
fn classify(i32) -> usize;
goal Filter<Counter, fn[classify]>: Iterator from "the call to .filter(classify)";
|}

(** Fault: an external type must implement an external trait — the
    orphan rule makes this the most expensive category of fix (§3.3):
    you cannot add the impl yourself, so you must wrap the type in a
    local newtype. *)
let orphan_external =
  {|
extern crate serde {
  trait Serialize {}
}
extern crate chrono {
  struct DateTime;
  struct Duration;
}
struct Event;
impl Serialize for Event {}
goal DateTime: Serialize from "the call to serde_json::to_string(&timestamp)";
|}

(** A deeper generic-container chain for the same orphan failure: the
    missing bound is three hops below the goal. *)
let orphan_nested =
  {|
extern crate serde {
  trait Serialize {}
}
extern crate chrono {
  struct DateTime;
}
struct Wrapper<T>;
struct Pair<A, B>;
struct Log;
impl Serialize for Log {}
impl<T> Serialize for Wrapper<T> where T: Serialize {}
impl<A, B> Serialize for Pair<A, B> where A: Serialize, B: Serialize {}
goal Wrapper<Pair<Log, DateTime>>: Serialize from "the call to serde_json::to_string(&entry)";
|}
