lib/corpus/serde_lite.ml:
