lib/corpus/suite.ml: Axum_lite Bevy_lite Brew Diesel_lite Futures_lite Harness List Motivating Serde_lite Space
