lib/corpus/motivating.ml:
