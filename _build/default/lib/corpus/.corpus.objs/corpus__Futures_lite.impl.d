lib/corpus/futures_lite.ml:
