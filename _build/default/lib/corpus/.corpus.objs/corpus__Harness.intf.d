lib/corpus/harness.mli: Argus Predicate Program Solver Trait_lang
