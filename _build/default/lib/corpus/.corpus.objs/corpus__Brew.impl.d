lib/corpus/brew.ml:
