lib/corpus/space.ml:
