lib/corpus/axum_lite.ml:
