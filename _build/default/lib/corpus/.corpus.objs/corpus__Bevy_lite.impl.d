lib/corpus/bevy_lite.ml:
