lib/corpus/diesel_lite.ml:
