lib/corpus/harness.ml: Argus List Parser Predicate Printf Program Resolve Solver Span Trait_lang
