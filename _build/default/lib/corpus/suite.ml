(** The 17-program evaluation suite (§5.2.1).

    The paper sources 25 programs from Semmler's Rust Foundation corpus
    and keeps 17 after removing unusable ones.  We reconstruct a suite of
    the same size and composition — Diesel-, Bevy-, and Axum-shaped
    failures, the synthetic brew/space mirrors, and std-flavoured
    iterator/orphan errors — each annotated with the trait bound that is
    the ground-truth root cause of the error. *)

let entries : Harness.entry list =
  [
    {
      id = "diesel-missing-join";
      title = "A missing table join";
      library = "diesel_lite";
      kind = Harness.Real;
      description =
        "Selects users::id and posts::id but never joins posts, so the \
         filter expression references a table absent from the from clause \
         (§2.1).";
      source = Diesel_lite.missing_join;
      root_cause = "<UsersTable as AppearsInFromClause<PostsTable>>::Count == Once";
      fix_hint = "inner_join posts::table before filtering on posts::id";
    };
    {
      id = "diesel-wrong-table-filter";
      title = "Filtering on a column of an unjoined table";
      library = "diesel_lite";
      kind = Harness.Real;
      description =
        "A posts-only query filters on users::id; the users table never \
         appears in the from clause.";
      source = Diesel_lite.wrong_table_filter;
      root_cause = "<PostsTable as AppearsInFromClause<UsersTable>>::Count == Once";
      fix_hint = "join users::table or filter on a posts column";
    };
    {
      id = "diesel-non-expression";
      title = "A table used as a column";
      library = "diesel_lite";
      kind = Harness.Real;
      description = "An eq() comparison against a table marker rather than a column.";
      source = Diesel_lite.non_expression_operand;
      root_cause = "UsersTable: Expression";
      fix_hint = "compare against a column such as users::id";
    };
    {
      id = "ast-overflow";
      title = "Accidental infinite recursion";
      library = "std";
      kind = Harness.Synthetic;
      description =
        "A blanket AstAssocs impl whose where-clause cycles through \
         AssocData back to itself (§2.2, E0275).";
      source = Motivating.ast_overflow;
      root_cause = "EmptyNode: AstAssocs";
      fix_hint = "replace the blanket impl with a concrete impl for EmptyNode";
    };
    {
      id = "bevy-errant-param";
      title = "An errant function parameter";
      library = "bevy_lite";
      kind = Harness.Real;
      description =
        "A system takes Timer instead of ResMut<Timer>; the diagnostic \
         stops at the IntoSystem branch point (§2.3).";
      source = Bevy_lite.errant_param;
      root_cause = "Timer: SystemParam";
      fix_hint = "wrap the parameter: mut timer: ResMut<Timer>";
    };
    {
      id = "bevy-assets-param";
      title = "Assets<Mesh> used directly as a parameter";
      library = "bevy_lite";
      kind = Harness.Real;
      description =
        "The user-study Bevy task: Assets<Mesh> is not a SystemParam; it \
         must be accessed through ResMut<Assets<Mesh>>.";
      source = Bevy_lite.assets_param;
      root_cause = "Assets<Mesh>: SystemParam";
      fix_hint = "take meshes: ResMut<Assets<Mesh>>";
    };
    {
      id = "bevy-missing-derive";
      title = "A resource without #[derive(Resource)]";
      library = "bevy_lite";
      kind = Harness.Real;
      description = "Res<Score> is fine, but Score itself never implements Resource.";
      source = Bevy_lite.missing_derive;
      root_cause = "Score: Resource";
      fix_hint = "add #[derive(Resource)] to Score";
    };
    {
      id = "bevy-bad-query";
      title = "Querying a non-QueryData component";
      library = "bevy_lite";
      kind = Harness.Real;
      description = "Query<Velocity> where Velocity does not implement QueryData.";
      source = Bevy_lite.bad_query;
      root_cause = "Velocity: QueryData";
      fix_hint = "derive Component/QueryData for Velocity";
    };
    {
      id = "axum-bad-return";
      title = "A handler returning a non-response";
      library = "axum_lite";
      kind = Harness.Real;
      description = "The handler returns a bare User; User is not IntoResponse.";
      source = Axum_lite.bad_return;
      root_cause = "User: IntoResponse";
      fix_hint = "return Json<User> instead of User";
    };
    {
      id = "axum-body-first";
      title = "Body extractor before a parts extractor";
      library = "axum_lite";
      kind = Harness.Real;
      description =
        "Json<CreateUser> consumes the body so it must come last; placed \
         first it would need FromRequestParts.";
      source = Axum_lite.body_extractor_first;
      root_cause = "Json<CreateUser>: FromRequestParts<()>";
      fix_hint = "reorder the parameters: (UrlPath<usize>, Json<CreateUser>)";
    };
    {
      id = "axum-missing-deserialize";
      title = "Extracting Json of a non-Deserialize type";
      library = "axum_lite";
      kind = Harness.Real;
      description = "Json<LoginForm> requires LoginForm: Deserialize.";
      source = Axum_lite.missing_deserialize;
      root_cause = "LoginForm: Deserialize";
      fix_hint = "add #[derive(Deserialize)] to LoginForm";
    };
    {
      id = "brew-clashing-recipe";
      title = "A recipe of clashing ingredients";
      library = "brew";
      kind = Harness.Synthetic;
      description =
        "Sunflower and nightshade have Affinity::Compat = Clash; mirrors \
         the Diesel projection-mismatch shape.";
      source = Brew.clashing_recipe;
      root_cause =
        "<Infusion<Sunflower> as Affinity<Infusion<Nightshade>>>::Compat == Compat";
      fix_hint = "brew sunflower with chamomile instead";
    };
    {
      id = "brew-not-a-plant";
      title = "Brewing a mineral";
      library = "brew";
      kind = Harness.Synthetic;
      description = "Granite is not a Plant, so Infusion<Granite> is not an Ingredient.";
      source = Brew.not_a_plant;
      root_cause = "Granite: Plant";
      fix_hint = "infuse a plant, or implement Plant for Granite";
    };
    {
      id = "space-raw-payload";
      title = "A raw payload as mission equipment";
      library = "space";
      kind = Harness.Synthetic;
      description =
        "The route function takes Supplies instead of Cargo<Supplies>; \
         mirrors the Bevy errant-parameter branch point.";
      source = Space.raw_payload;
      root_cause = "Supplies: Equipment";
      fix_hint = "wrap the parameter: Cargo<Supplies>";
    };
    {
      id = "space-bad-fuel";
      title = "Fuel of an unregistered grade";
      library = "space";
      kind = Harness.Synthetic;
      description = "FuelTank<Kerosene> requires Kerosene: Grade.";
      source = Space.bad_fuel;
      root_cause = "Kerosene: Grade";
      fix_hint = "implement Grade for Kerosene or switch to Hydrazine";
    };
    {
      id = "iter-map-wrong-input";
      title = "Mapping with the wrong input type";
      library = "std";
      kind = Harness.Synthetic;
      description =
        "Counter yields i32 but the mapped function takes String; the \
         failure is inside the Fn obligation of Map's Iterator impl.";
      source = Motivating.map_wrong_input;
      root_cause = "fn[stringify]: Fn<(<Counter as Iterator>::Item,)>";
      fix_hint = "map with a function of type fn(i32) -> String";
    };
    {
      id = "orphan-nested";
      title = "An external type needing an external trait";
      library = "std";
      kind = Harness.Synthetic;
      description =
        "serde::Serialize is required for chrono::DateTime three hops \
         below the goal; the orphan rule forbids adding the impl locally.";
      source = Motivating.orphan_nested;
      root_cause = "DateTime: Serialize";
      fix_hint = "wrap DateTime in a local newtype with its own Serialize impl";
    };
  ]

let size = List.length entries

let find id = List.find_opt (fun (e : Harness.entry) -> e.id = id) entries

(** Extended corpus: error classes beyond the paper's dataset, covering
    the other great generators of trait errors in the wild — serde derive
    chains and async [Future]/[Send] bounds.  Kept out of the ranked
    17-program suite (paper fidelity) but exercised by the tests and
    available through the CLI. *)
let extended : Harness.entry list =
  [
    {
      id = "serde-missing-field-impl";
      title = "A non-serializable field, five requirements deep";
      library = "serde_lite";
      kind = Harness.Real;
      description =
        "Vec<User> -> User -> Profile -> Option<Session> -> Session: the \
         chain bottoms out at Session's raw OS handle.";
      source = Serde_lite.missing_field_impl;
      root_cause = "RawFd: Serialize";
      fix_hint = "#[serde(skip)] the Session field, or don't store RawFd";
    };
    {
      id = "serde-bad-map-key";
      title = "A HashMap key without Serialize";
      library = "serde_lite";
      kind = Harness.Real;
      description = "HashMap<Ip, _> requires Ip: Serialize.";
      source = Serde_lite.bad_map_key;
      root_cause = "Ip: Serialize";
      fix_hint = "derive Serialize for Ip";
    };
    {
      id = "serde-missing-deserialize";
      title = "Serialize without Deserialize";
      library = "serde_lite";
      kind = Harness.Real;
      description = "the round-trip asymmetry: Config only derives half.";
      source = Serde_lite.missing_deserialize;
      root_cause = "Config: Deserialize";
      fix_hint = "add #[derive(Deserialize)] to Config";
    };
    {
      id = "futures-rc-across-await";
      title = "future cannot be sent between threads safely";
      library = "futures_lite";
      kind = Harness.Real;
      description =
        "an Rc held across an await makes the async block !Send, which \
         breaks spawn's Spawnable bound.";
      source = Futures_lite.rc_across_await;
      root_cause = "Rc<Vec<String>>: Send";
      fix_hint = "hold an Arc instead of an Rc across the await";
    };
    {
      id = "futures-map-wrong-output";
      title = "Mapping a future with the wrong input type";
      library = "futures_lite";
      kind = Harness.Real;
      description = "Ready<i32>'s output is i32 but the closure takes String.";
      source = Futures_lite.map_wrong_output;
      root_cause = "fn[summarize]: Fn<(<Ready<i32> as Future>::Output,)>";
      fix_hint = "map with a function of type fn(i32) -> _";
    };
    {
      id = "futures-and-then-not-future";
      title = "and_then with a non-future continuation";
      library = "futures_lite";
      kind = Harness.Real;
      description = "the continuation returns usize, which is not a Future.";
      source = Futures_lite.and_then_not_future;
      root_cause = "usize: Future";
      fix_hint = "return Ready<usize> (or use .map instead of .and_then)";
    };
  ]

(** Well-typed counterparts of the extended corpus. *)
let extended_ok : Harness.entry list =
  [
    {
      id = "bevy-method-call-body";
      title = "add_systems as a real method call";
      library = "bevy_lite";
      kind = Harness.Real;
      description =
        "the fully end-to-end §2.3: no goal annotations; the obligation is \
         generated by type-checking app.add_systems(Update, run_timer_bad). \
         Checked by test_corpus via the typeck library (the one good and \
         one bad registration are both in fn main).";
      source = Bevy_lite.errant_param_method_call;
      root_cause = "";
      fix_hint = "wrap the parameter: ResMut<Timer>";
    };
    {
      id = "serde-fixed-model";
      title = "The #[serde(skip)] fix";
      library = "serde_lite";
      kind = Harness.Real;
      description = "missing-field-impl after the fix; must type-check.";
      source = Serde_lite.fixed_model;
      root_cause = "";
      fix_hint = "";
    };
    {
      id = "futures-arc-across-await";
      title = "Arc across the await";
      library = "futures_lite";
      kind = Harness.Real;
      description = "rc-across-await after the fix; must type-check.";
      source = Futures_lite.arc_across_await;
      root_cause = "";
      fix_hint = "";
    };
    {
      id = "futures-ok-chain";
      title = "A correct combinator chain";
      library = "futures_lite";
      kind = Harness.Real;
      description = "well-typed Map/AndThen composition; must type-check.";
      source = Futures_lite.ok_chain;
      root_cause = "";
      fix_hint = "";
    };
  ]

(** The paper starts from 25 programs and removes 8 (§5.2.1): "2 for not
    having a clear program intention and error cause, 2 that are
    well-typed but fail to compile due to bugs in the Rust compiler, 2
    for not being actual trait errors, and 2 that crash the Rust
    compiler."  We reconstruct the same removal categories; the test
    suite asserts each exhibits its reason (and hence does not belong in
    the ranked evaluation). *)
type removal_reason =
  | No_clear_intention  (** ambiguous goal; no single blameable root cause *)
  | Compiler_limitation  (** should type-check; rejected only by engine limits *)
  | Not_a_trait_error  (** fails before trait solving (name resolution) *)
  | Crashes_compiler  (** blows the recursion budget however high *)

let removed : (Harness.entry * removal_reason) list =
  let mk id title source reason =
    ( {
        Harness.id;
        title;
        library = "std";
        kind = Harness.Synthetic;
        description = "removed from the ranked suite (§5.2.1)";
        source;
        root_cause = "";
        fix_hint = "";
      },
      reason )
  in
  [
    (* no clear intention: the goal is ambiguous by construction — two
       impls both apply and nothing says which the author wanted *)
    mk "removed-ambiguous-intent-1" "Ambiguous marker intent"
      {|
        struct A; struct M1; struct M2;
        trait T<M> {}
        impl T<M1> for A {}
        impl T<M2> for A {}
        goal A: T<_>;
      |}
      No_clear_intention;
    mk "removed-ambiguous-intent-2" "Underdetermined receiver"
      {|
        struct A; struct B;
        trait T {}
        impl T for A {}
        impl T for B {}
        goal _: T;
      |}
      No_clear_intention;
    (* engine limitation: these hold under a coinductive reading (as
       auto-trait cycles do in rustc), but the inductive cycle rule —
       ours, and rustc's for ordinary traits — rejects them *)
    mk "removed-compiler-bug-1" "Coinductive-only self-reference"
      {|
        struct A; struct W<X>;
        trait T {}
        impl T for A {}
        impl<X> T for W<X> where W<X>: T {}
        goal W<A>: T;
      |}
      Compiler_limitation;
    mk "removed-compiler-bug-2" "Mutually coinductive traits"
      {|
        struct L; struct R;
        trait T {} trait U {}
        impl T for L where R: U {}
        impl U for R where L: T {}
        goal L: T;
      |}
      Compiler_limitation;
    (* not trait errors: these fail in name resolution, before any trait
       obligation exists *)
    mk "removed-not-trait-1" "Misspelled trait"
      "struct A; trait Display {} goal A: Dispaly;" Not_a_trait_error;
    mk "removed-not-trait-2" "Wrong arity, caught syntactically"
      "struct A; trait T<X> {} goal A: T<i32, i32>;" Not_a_trait_error;
    (* crashes: unbounded growth that exhausts any recursion budget *)
    mk "removed-crash-1" "Ever-growing obligation"
      {|
        struct A; struct W<X>;
        trait T {}
        impl<X> T for W<X> where W<W<X>>: T {}
        goal W<A>: T;
      |}
      Crashes_compiler;
    mk "removed-crash-2" "Mutually growing obligations"
      {|
        struct A; struct L<X>; struct R<X>;
        trait T {} trait U {}
        impl<X> T for L<X> where R<L<X>>: U {}
        impl<X> U for R<X> where L<R<X>>: T {}
        goal L<A>: T;
      |}
      Crashes_compiler;
  ]

(** Programs kept out of the ranked suite but used by tests and examples:
    well-typed baselines and extra faults. *)
let extras : Harness.entry list =
  [
    {
      id = "diesel-with-join";
      title = "The corrected join query";
      library = "diesel_lite";
      kind = Harness.Real;
      description = "missing-join after the fix; must type-check.";
      source = Diesel_lite.with_join;
      root_cause = "";
      fix_hint = "";
    };
    {
      id = "bevy-correct-param";
      title = "The corrected Bevy system";
      library = "bevy_lite";
      kind = Harness.Real;
      description = "errant-param after the fix; must type-check.";
      source = Bevy_lite.correct_param;
      root_cause = "";
      fix_hint = "";
    };
    {
      id = "axum-ok-handler";
      title = "A correct Axum handler";
      library = "axum_lite";
      kind = Harness.Real;
      description = "well-typed handler; must type-check.";
      source = Axum_lite.ok_handler;
      root_cause = "";
      fix_hint = "";
    };
    {
      id = "brew-ok";
      title = "A compatible brew";
      library = "brew";
      kind = Harness.Synthetic;
      description = "well-typed recipe; must type-check.";
      source = Brew.ok_brew;
      root_cause = "";
      fix_hint = "";
    };
    {
      id = "space-ok";
      title = "A valid flight plan";
      library = "space";
      kind = Harness.Synthetic;
      description = "well-typed mission; must type-check.";
      source = Space.ok_plan;
      root_cause = "";
      fix_hint = "";
    };
    {
      id = "ast-fixed";
      title = "The fixed AST recursion";
      library = "std";
      kind = Harness.Synthetic;
      description = "ast-overflow after the fix; must type-check.";
      source = Motivating.ast_fixed;
      root_cause = "";
      fix_hint = "";
    };
    {
      id = "iter-filter-not-bool";
      title = "Filtering with a non-bool predicate";
      library = "std";
      kind = Harness.Synthetic;
      description = "extra fault used in tests.";
      source = Motivating.filter_not_bool;
      root_cause = "<fn[classify] as Fn<(<Counter as Iterator>::Item,)>>::Output == bool";
      fix_hint = "return bool from the predicate";
    };
    {
      id = "orphan-external";
      title = "Direct orphan failure";
      library = "std";
      kind = Harness.Synthetic;
      description = "extra fault used in tests.";
      source = Motivating.orphan_external;
      root_cause = "DateTime: Serialize";
      fix_hint = "newtype wrapper";
    };
  ]
