(** Stratified (within-subject) permutation test.

    §5.1.2: "To account for the within-subjects design, we further use a
    generalized linear model with condition as a fixed effect and
    participant ID as a random effect.  Under this model, the effect is
    statistically significant (p = 0.03)."

    A full GLMM fitter is out of scope; the exact-inference analog for a
    within-subjects binary outcome is a permutation test that shuffles
    condition labels *within each participant* (preserving each
    participant's 2-treatment/2-control block structure) and asks how
    often the permuted treatment-vs-control rate difference is at least
    as extreme as the observed one.  This controls for participant skill
    exactly the way the random intercept does. *)

type result = {
  observed : float;  (** treatment rate − control rate *)
  p_value : float;  (** two-sided *)
  iterations : int;
}

(** [test ~rng ~iterations strata] where each stratum (participant) is a
    list of [(in_treatment, outcome)] trials. *)
let test ?(iterations = 10_000) ~(rng : Rng.t) (strata : (bool * bool) list list) : result
    =
  let rate_diff (strata : (bool * bool) list list) =
    let t_succ = ref 0 and t_n = ref 0 and c_succ = ref 0 and c_n = ref 0 in
    List.iter
      (List.iter (fun (treated, ok) ->
           if treated then begin
             incr t_n;
             if ok then incr t_succ
           end
           else begin
             incr c_n;
             if ok then incr c_succ
           end))
      strata;
    if !t_n = 0 || !c_n = 0 then 0.0
    else
      (float_of_int !t_succ /. float_of_int !t_n)
      -. (float_of_int !c_succ /. float_of_int !c_n)
  in
  let observed = rate_diff strata in
  (* Pre-split each stratum into its label multiset and outcomes. *)
  let outcome_arrays =
    List.map (fun s -> (Array.of_list (List.map fst s), Array.of_list (List.map snd s))) strata
  in
  let extreme = ref 0 in
  for _ = 1 to iterations do
    let permuted =
      List.map
        (fun (labels, outcomes) ->
          let labels = Array.copy labels in
          Rng.shuffle rng labels;
          Array.to_list (Array.map2 (fun l o -> (l, o)) labels outcomes))
        outcome_arrays
    in
    if Float.abs (rate_diff permuted) >= Float.abs observed -. 1e-12 then incr extreme
  done;
  {
    observed;
    (* add-one smoothing keeps p strictly positive, the standard Monte
       Carlo permutation estimate *)
    p_value = float_of_int (!extreme + 1) /. float_of_int (iterations + 1);
    iterations;
  }
