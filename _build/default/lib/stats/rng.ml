(** Deterministic pseudo-random numbers (SplitMix64).

    The study simulator must be reproducible: every run of the Fig. 11
    bench regenerates identical samples from a fixed seed. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  int_of_float (float t *. float_of_int bound)

let bool t = float t < 0.5

(** Bernoulli with success probability [p]. *)
let bernoulli t p = float t < p

(** Standard normal via Box-Muller. *)
let normal t =
  let u1 = Float.max 1e-12 (float t) in
  let u2 = float t in
  Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2)

(** Normal with given mean and standard deviation. *)
let gaussian t ~mu ~sigma = mu +. (sigma *. normal t)

(** Log-normal: exp of a normal — a standard model for task-completion
    times, which are positive and right-skewed. *)
let log_normal t ~mu ~sigma = Float.exp (gaussian t ~mu ~sigma)

(** Exponential with given rate. *)
let exponential t ~rate = -.Float.log (Float.max 1e-12 (float t)) /. rate

(** Fork an independent stream (for per-participant generators). *)
let split t = { state = next_int64 t }

(** Fisher-Yates shuffle, in place. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** A random sample of [k] distinct elements of [xs]. *)
let sample t k xs =
  let arr = Array.of_list xs in
  shuffle t arr;
  Array.to_list (Array.sub arr 0 (min k (Array.length arr)))
