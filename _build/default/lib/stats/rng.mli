(** Deterministic pseudo-random numbers (SplitMix64), so every study
    simulation and bootstrap is reproducible from its seed. *)

type t

val create : seed:int -> t
val next_int64 : t -> int64

(** Uniform in [0, 1). *)
val float : t -> float

(** Uniform in [0, bound). *)
val int : t -> int -> int

val bool : t -> bool
val bernoulli : t -> float -> bool

(** Standard normal (Box-Muller). *)
val normal : t -> float

val gaussian : t -> mu:float -> sigma:float -> float

(** Positive and right-skewed — the standard model for task times. *)
val log_normal : t -> mu:float -> sigma:float -> float

val exponential : t -> rate:float -> float

(** Fork an independent stream (per-participant generators). *)
val split : t -> t

val shuffle : t -> 'a array -> unit

(** A random sample of [k] distinct elements. *)
val sample : t -> int -> 'a list -> 'a list
