lib/stats/descriptive.mli:
