lib/stats/tests.ml: Descriptive Float List Special
