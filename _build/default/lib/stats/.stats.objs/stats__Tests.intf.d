lib/stats/tests.mli:
