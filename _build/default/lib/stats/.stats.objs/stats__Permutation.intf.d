lib/stats/permutation.mli: Rng
