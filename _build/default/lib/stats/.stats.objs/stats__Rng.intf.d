lib/stats/rng.mli:
