lib/stats/ci.ml: Array Descriptive Float Format List Rng Special
