lib/stats/permutation.ml: Array Float List Rng
