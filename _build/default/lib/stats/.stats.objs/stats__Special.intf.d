lib/stats/special.mli:
