lib/stats/ci.mli: Format Rng
