(** Hypothesis tests reported in §5.1.2: the chi-square test of
    independence for localization/fix {e rates} and the Kruskal-Wallis H
    test for localization/fix {e times}. *)

type test_result = { statistic : float; df : int; p_value : float }

(** Chi-square test of independence on a 2×2 contingency table
    [| [|a; b|]; [|c; d|] |] (rows = conditions, columns = outcome),
    without Yates correction (matching the paper's reported χ(1,100)
    values). *)
let chi2_2x2 ~a ~b ~c ~d : test_result =
  let af = float_of_int a and bf = float_of_int b in
  let cf = float_of_int c and df_ = float_of_int d in
  let n = af +. bf +. cf +. df_ in
  if n = 0.0 then invalid_arg "chi2_2x2: empty table";
  let r1 = af +. bf and r2 = cf +. df_ in
  let c1 = af +. cf and c2 = bf +. df_ in
  if r1 = 0.0 || r2 = 0.0 || c1 = 0.0 || c2 = 0.0 then
    { statistic = 0.0; df = 1; p_value = 1.0 }
  else begin
    let statistic = n *. ((af *. df_) -. (bf *. cf)) ** 2.0 /. (r1 *. r2 *. c1 *. c2) in
    { statistic; df = 1; p_value = Special.chi2_sf ~df:1 statistic }
  end

(** Kruskal-Wallis H test across [groups] (each a list of observations),
    with the standard tie correction.  For two groups this is equivalent
    to a Mann-Whitney U test, which is how the paper compares
    with-Argus/without-Argus task times. *)
let kruskal_wallis (groups : float list list) : test_result =
  let k = List.length groups in
  if k < 2 then invalid_arg "kruskal_wallis: need at least two groups";
  let all = List.concat groups in
  let n = List.length all in
  if n = 0 then invalid_arg "kruskal_wallis: empty data";
  let rks = Descriptive.ranks all in
  (* split ranks back into their groups *)
  let rec take_drop n = function
    | xs when n = 0 -> ([], xs)
    | [] -> ([], [])
    | x :: xs ->
        let a, b = take_drop (n - 1) xs in
        (x :: a, b)
  in
  let group_ranks, _ =
    List.fold_left
      (fun (acc, remaining) g ->
        let taken, rest = take_drop (List.length g) remaining in
        (taken :: acc, rest))
      ([], rks) groups
  in
  let group_ranks = List.rev group_ranks in
  let nf = float_of_int n in
  let h_raw =
    (12.0 /. (nf *. (nf +. 1.0)))
    *. List.fold_left2
         (fun acc g gr ->
           let ni = float_of_int (List.length g) in
           if ni = 0.0 then acc
           else
             let rsum = List.fold_left ( +. ) 0.0 gr in
             acc +. (rsum *. rsum /. ni))
         0.0 groups group_ranks
    -. (3.0 *. (nf +. 1.0))
  in
  (* tie correction: divide by 1 - Σ(t³-t)/(n³-n) *)
  let sorted = List.sort Float.compare all in
  let tie_sum = ref 0.0 in
  let rec count_ties = function
    | [] -> ()
    | x :: rest ->
        let same, others = List.partition (fun y -> y = x) rest in
        let t = float_of_int (1 + List.length same) in
        tie_sum := !tie_sum +. ((t ** 3.0) -. t);
        count_ties others
  in
  count_ties sorted;
  let correction = 1.0 -. (!tie_sum /. ((nf ** 3.0) -. nf)) in
  let statistic = if correction > 0.0 then h_raw /. correction else h_raw in
  let df = k - 1 in
  { statistic; df; p_value = Special.chi2_sf ~df statistic }
