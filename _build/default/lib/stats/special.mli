(** Special functions backing the hypothesis tests. *)

(** Natural log of the gamma function (Lanczos, g=7). *)
val log_gamma : float -> float

(** Lower regularized incomplete gamma P(a, x). *)
val lower_regularized_gamma : float -> float -> float

(** CDF of the chi-square distribution. *)
val chi2_cdf : df:int -> float -> float

(** Upper-tail p-value. *)
val chi2_sf : df:int -> float -> float

(** Standard normal CDF (Abramowitz & Stegun 26.2.17-style). *)
val normal_cdf : float -> float

(** Inverse standard normal CDF (Acklam). *)
val normal_ppf : float -> float
