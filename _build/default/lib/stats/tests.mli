(** Hypothesis tests reported in §5.1.2: chi-square on rates,
    Kruskal-Wallis on times. *)

type test_result = { statistic : float; df : int; p_value : float }

(** Chi-square test of independence on a 2×2 table
    [| a b |; | c d |] (rows = conditions), without Yates correction —
    matching the paper's reported χ(1,100) values. *)
val chi2_2x2 : a:int -> b:int -> c:int -> d:int -> test_result

(** Kruskal-Wallis H across groups, with the standard tie correction.
    For two groups this compares like the Mann-Whitney U test. *)
val kruskal_wallis : float list list -> test_result
