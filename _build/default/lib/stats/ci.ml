(** Confidence intervals.

    Fig. 11 reports 95% binomial proportion CIs on rates (e.g. "84% of
    cases, CI = [71%, 93%]") and CIs on median times (e.g. "3m3s,
    CI = [2m28s, 3m46s]").  We provide the Wilson score interval for
    proportions and a bootstrap percentile interval for medians. *)

type interval = { lo : float; hi : float }

(** Wilson score interval for a binomial proportion. *)
let wilson ?(level = 0.95) ~successes ~trials () : interval =
  if trials = 0 then invalid_arg "wilson: zero trials";
  let z = Special.normal_ppf (1.0 -. ((1.0 -. level) /. 2.0)) in
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let center = (p +. (z2 /. (2.0 *. n))) /. denom in
  let spread =
    z *. Float.sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) /. denom
  in
  { lo = Float.max 0.0 (center -. spread); hi = Float.min 1.0 (center +. spread) }

(** Percentile bootstrap CI for an arbitrary statistic. *)
let bootstrap ?(level = 0.95) ?(iterations = 2000) ~(rng : Rng.t)
    (statistic : float list -> float) (sample : float list) : interval =
  match sample with
  | [] -> invalid_arg "bootstrap: empty sample"
  | _ ->
      let arr = Array.of_list sample in
      let n = Array.length arr in
      let stats =
        List.init iterations (fun _ ->
            let resample = List.init n (fun _ -> arr.(Rng.int rng n)) in
            statistic resample)
      in
      let alpha = (1.0 -. level) /. 2.0 in
      {
        lo = Descriptive.quantile alpha stats;
        hi = Descriptive.quantile (1.0 -. alpha) stats;
      }

let bootstrap_median ?level ?iterations ~rng sample =
  bootstrap ?level ?iterations ~rng Descriptive.median sample

let pp_interval ppf { lo; hi } = Format.fprintf ppf "[%.3f, %.3f]" lo hi
