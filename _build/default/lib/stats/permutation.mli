(** Stratified (within-subject) permutation test — the exact-inference
    analog of the paper's GLMM with participant as a random effect
    (§5.1.2, p = 0.03). *)

type result = {
  observed : float;  (** treatment rate − control rate *)
  p_value : float;  (** two-sided, Monte Carlo with add-one smoothing *)
  iterations : int;
}

(** [test ~rng strata] where each stratum (participant) is a list of
    [(in_treatment, outcome)] trials; labels are permuted within each
    stratum only. *)
val test : ?iterations:int -> rng:Rng.t -> (bool * bool) list list -> result
