(** Descriptive statistics over float samples.  Functions raise
    [Invalid_argument] on empty samples. *)

val mean : float list -> float
val variance : float list -> float
val stddev : float list -> float

(** Linear-interpolation quantile (type 7, the R/numpy default). *)
val quantile : float -> float list -> float

val median : float list -> float
val min_max : float list -> float * float

(** 1-based ranks with midranks for ties (Kruskal-Wallis needs these). *)
val ranks : float list -> float list

val correlation : float list -> float list -> float
val mean_absolute_deviation : float list -> float list -> float
