(** Confidence intervals: Wilson score for proportions (Fig. 11's
    "95% binomial proportion confidence interval") and percentile
    bootstrap for medians. *)

type interval = { lo : float; hi : float }

val wilson : ?level:float -> successes:int -> trials:int -> unit -> interval

val bootstrap :
  ?level:float ->
  ?iterations:int ->
  rng:Rng.t ->
  (float list -> float) ->
  float list ->
  interval

val bootstrap_median : ?level:float -> ?iterations:int -> rng:Rng.t -> float list -> interval
val pp_interval : Format.formatter -> interval -> unit
