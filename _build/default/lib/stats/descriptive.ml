(** Descriptive statistics over float samples. *)

let mean xs =
  match xs with
  | [] -> invalid_arg "mean: empty sample"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> invalid_arg "variance: need at least two points"
  | _ ->
      let m = mean xs in
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
      /. float_of_int (List.length xs - 1)

let stddev xs = Float.sqrt (variance xs)

(** Quantile by linear interpolation on the sorted sample (type 7, the
    R/numpy default). *)
let quantile q xs =
  if q < 0.0 || q > 1.0 then invalid_arg "quantile";
  match List.sort Float.compare xs with
  | [] -> invalid_arg "quantile: empty sample"
  | sorted ->
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      if n = 1 then arr.(0)
      else begin
        let h = q *. float_of_int (n - 1) in
        let lo = int_of_float (Float.floor h) in
        let hi = min (lo + 1) (n - 1) in
        let frac = h -. float_of_int lo in
        arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
      end

let median xs = quantile 0.5 xs

let min_max xs =
  match xs with
  | [] -> invalid_arg "min_max: empty sample"
  | x :: rest ->
      List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) rest

(** Ranks with midranks for ties (1-based), as Kruskal-Wallis needs. *)
let ranks (xs : float list) : float list =
  let indexed = List.mapi (fun i x -> (i, x)) xs in
  let sorted = List.sort (fun (_, a) (_, b) -> Float.compare a b) indexed in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let out = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && snd arr.(!j + 1) = snd arr.(!i) do
      incr j
    done;
    (* positions !i..!j share value: midrank *)
    let midrank = (float_of_int (!i + !j) /. 2.0) +. 1.0 in
    for k = !i to !j do
      out.(fst arr.(k)) <- midrank
    done;
    i := !j + 1
  done;
  Array.to_list out

(** Pearson correlation. *)
let correlation xs ys =
  if List.length xs <> List.length ys then invalid_arg "correlation: length mismatch";
  let mx = mean xs and my = mean ys in
  let num =
    List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0.0 xs ys
  in
  let sx = Float.sqrt (List.fold_left (fun a x -> a +. ((x -. mx) ** 2.0)) 0.0 xs) in
  let sy = Float.sqrt (List.fold_left (fun a y -> a +. ((y -. my) ** 2.0)) 0.0 ys) in
  num /. (sx *. sy)

let mean_absolute_deviation xs ys =
  if List.length xs <> List.length ys then invalid_arg "mad: length mismatch";
  mean (List.map2 (fun x y -> Float.abs (x -. y)) xs ys)
