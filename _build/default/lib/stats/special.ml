(** Special functions: log-gamma and the regularized incomplete gamma
    function, which give the chi-square CDF used by both hypothesis tests
    the paper reports (chi-square test of independence and the
    Kruskal-Wallis H test, whose statistic is chi-square distributed). *)

(* Lanczos approximation (g = 7, n = 9), standard coefficients. *)
let lanczos_g = 7.0

let lanczos_coeff =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

(** Natural log of the gamma function, for x > 0. *)
let rec log_gamma x =
  if x < 0.5 then
    (* reflection: Γ(x)Γ(1-x) = π / sin(πx) *)
    Float.log (Float.pi /. Float.sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let a = ref lanczos_coeff.(0) in
    let t = x +. lanczos_g +. 0.5 in
    for i = 1 to Array.length lanczos_coeff - 1 do
      a := !a +. (lanczos_coeff.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. Float.log (2.0 *. Float.pi))
    +. ((x +. 0.5) *. Float.log t)
    -. t
    +. Float.log !a
  end

(** Lower regularized incomplete gamma P(a, x), via the series expansion
    for x < a+1 and the continued fraction for x >= a+1 (Numerical
    Recipes' gser/gcf split). *)
let lower_regularized_gamma a x =
  if x < 0.0 || a <= 0.0 then invalid_arg "lower_regularized_gamma";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then begin
    (* series: P(a,x) = e^-x x^a / Γ(a) * Σ x^n / (a(a+1)...(a+n)) *)
    let sum = ref (1.0 /. a) in
    let term = ref (1.0 /. a) in
    let ap = ref a in
    let continue_ = ref true in
    let iters = ref 0 in
    while !continue_ && !iters < 500 do
      incr iters;
      ap := !ap +. 1.0;
      term := !term *. x /. !ap;
      sum := !sum +. !term;
      if Float.abs !term < Float.abs !sum *. 1e-15 then continue_ := false
    done;
    !sum *. Float.exp ((a *. Float.log x) -. x -. log_gamma a)
  end
  else begin
    (* continued fraction for Q(a,x), then P = 1 - Q (modified Lentz) *)
    let tiny = 1e-300 in
    let b = ref (x +. 1.0 -. a) in
    let c = ref (1.0 /. tiny) in
    let d = ref (1.0 /. !b) in
    let h = ref !d in
    let continue_ = ref true in
    let i = ref 1 in
    while !continue_ && !i < 500 do
      let an = -.float_of_int !i *. (float_of_int !i -. a) in
      b := !b +. 2.0;
      d := (an *. !d) +. !b;
      if Float.abs !d < tiny then d := tiny;
      c := !b +. (an /. !c);
      if Float.abs !c < tiny then c := tiny;
      d := 1.0 /. !d;
      let del = !d *. !c in
      h := !h *. del;
      if Float.abs (del -. 1.0) < 1e-15 then continue_ := false;
      incr i
    done;
    let q = Float.exp ((a *. Float.log x) -. x -. log_gamma a) *. !h in
    1.0 -. q
  end

(** CDF of the chi-square distribution with [df] degrees of freedom. *)
let chi2_cdf ~df x =
  if x <= 0.0 then 0.0 else lower_regularized_gamma (float_of_int df /. 2.0) (x /. 2.0)

(** Upper tail p-value for a chi-square statistic. *)
let chi2_sf ~df x = 1.0 -. chi2_cdf ~df x

(** Standard normal CDF via the complementary error function
    (Abramowitz & Stegun 7.1.26-style rational approximation). *)
let normal_cdf z =
  let t = 1.0 /. (1.0 +. (0.2316419 *. Float.abs z)) in
  let poly =
    t
    *. (0.319381530
       +. (t *. (-0.356563782 +. (t *. (1.781477937 +. (t *. (-1.821255978 +. (t *. 1.330274429))))))))
  in
  let pdf = Float.exp (-0.5 *. z *. z) /. Float.sqrt (2.0 *. Float.pi) in
  if z >= 0.0 then 1.0 -. (pdf *. poly) else pdf *. poly

(** Inverse standard normal CDF (Acklam's algorithm), needed for the
    Wilson confidence interval's z-value at arbitrary levels. *)
let normal_ppf p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "normal_ppf";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  if p < p_low then begin
    let q = Float.sqrt (-2.0 *. Float.log p) in
    (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5)
    |> fun num -> num /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  end
  else if p <= 1.0 -. p_low then begin
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5)
    |> fun num ->
    num *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0)
  end
  else begin
    let q = Float.sqrt (-2.0 *. Float.log (1.0 -. p)) in
    -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  end
