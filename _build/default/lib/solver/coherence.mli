(** Coherence: overlap checking, the orphan rule, and impl
    well-formedness (associated-type bounds). *)

open Trait_lang

(** {1 Overlap (E0119)} *)

type overlap = {
  trait_ : Path.t;
  impl_a : Decl.impl;
  impl_b : Decl.impl;
  witness : Ty.t;  (** a type both impls would apply to *)
}

(** Do two impls of the same trait overlap?  Tests head unification under
    fresh variables; where-clauses are not consulted (no negative
    reasoning), as in rustc's basic check. *)
val overlap_of_pair : Infer_ctx.t -> Decl.impl -> Decl.impl -> overlap option

(** All pairwise overlaps in a program. *)
val check : Program.t -> overlap list

(** {1 The orphan rule (E0117)} *)

type orphan = { o_impl : Decl.impl; o_trait : Path.t; o_self : Ty.t }

(** Does [ty] mention a nominal type of [crate]?  The simplified "local
    type coverage" test. *)
val mentions_crate_ty : Path.crate -> Ty.t -> bool

(** Legal iff the trait, the self type, or a trait argument is local to
    the impl's crate. *)
val is_orphan : Decl.impl -> bool

val orphan_violations : Program.t -> orphan list

(** {1 Impl well-formedness} *)

(** A failed item bound: the impl binds [wf_assoc] to a type that does
    not satisfy the bound its trait declares; [wf_tree] is the failing
    inference tree, debuggable like any other. *)
type wf_failure = {
  wf_impl : Decl.impl;
  wf_assoc : string;
  wf_bound : Ty.trait_ref;
  wf_tree : Trace.goal_node;
}

(** Check every associated-type binding against its declared bounds, with
    the impl's own where-clauses in scope. *)
val check_impl_wf : ?cfg:Solve.config -> Program.t -> wf_failure list
