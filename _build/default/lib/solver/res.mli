(** Evaluation results (Fig. 5): R ⟶ yes | no | maybe.  [Maybe] arises
    from un-inferred type variables or ambiguous selection; the
    obligation engine retries [Maybe] predicates to a fixpoint, after
    which survivors become failures (§4). *)

type t = Yes | Maybe | No

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val is_yes : t -> bool
val is_no : t -> bool
val is_maybe : t -> bool

(** Conjunction: a candidate succeeds iff all nested predicates do. *)
val and_ : t -> t -> t

val conj : t list -> t

(** Disjunction over candidates (selection-uniqueness is layered on by
    {!Solve}). *)
val or_ : t -> t -> t

val disj : t list -> t
