(** The obligation engine: fixpoint solving of a program's root goals.

    §4: ambiguous predicates remain in the queue until proved or until
    inference finishes, at which point survivors become failures; each
    round's re-evaluation appears as a new snapshot in [attempts] for the
    extraction layer's implication heuristic. *)

open Trait_lang

type status =
  | Proved
  | Disproved  (** a hard trait error *)
  | Ambiguous  (** still maybe when inference finished — also an error *)

type goal_report = {
  goal : Program.goal;
  attempts : Trace.goal_node list;  (** one tree per solving round, oldest first *)
  final : Trace.goal_node;
  status : status;
}

type report = {
  reports : goal_report list;
  rounds : int;  (** fixpoint iterations used *)
  solver : Solve.t;  (** retains the inference context for resolution *)
}

val status_of_result : Res.t -> status

(** Solve goals to fixpoint on an existing solver state — the reusable
    core of {!solve_program}, also driven by the type checker. *)
val solve_goals :
  ?max_rounds:int -> Solve.t -> Program.goal list -> goal_report list * int

(** Solve all root goals of a program to fixpoint.  [env] supplies
    in-scope where-clauses; [max_rounds] bounds the fixpoint. *)
val solve_program :
  ?cfg:Solve.config -> ?env:Predicate.t list -> ?max_rounds:int -> Program.t -> report

(** The goals that did not prove. *)
val errors : report -> goal_report list

val all_proved : report -> bool
