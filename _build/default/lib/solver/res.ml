(** Evaluation results (Fig. 5): R ⟶ yes | no | maybe.

    [Maybe] arises when a predicate refers to un-inferred type variables
    (or when candidate selection is ambiguous); the obligation engine keeps
    re-evaluating [Maybe] predicates until a fixpoint, after which
    survivors become failures (§4). *)

type t = Yes | Maybe | No

let to_string = function Yes -> "yes" | Maybe -> "maybe" | No -> "no"

let pp ppf r = Fmt.string ppf (to_string r)

let equal (a : t) (b : t) = a = b

let is_yes = function Yes -> true | _ -> false
let is_no = function No -> true | _ -> false
let is_maybe = function Maybe -> true | _ -> false

(** Conjunction: a candidate succeeds iff all of its nested predicates
    succeed. *)
let and_ a b =
  match (a, b) with
  | No, _ | _, No -> No
  | Maybe, _ | _, Maybe -> Maybe
  | Yes, Yes -> Yes

let conj results = List.fold_left and_ Yes results

(** Disjunction over candidates, ignoring selection-uniqueness concerns
    (those are layered on by {!Solve}). *)
let or_ a b =
  match (a, b) with
  | Yes, _ | _, Yes -> Yes
  | Maybe, _ | _, Maybe -> Maybe
  | No, No -> No

let disj results = List.fold_left or_ No results
