lib/solver/obligations.ml: Hashtbl Infer_ctx List Option Program Res Solve Trace Trait_lang
