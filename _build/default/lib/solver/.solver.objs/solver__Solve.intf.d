lib/solver/solve.mli: Infer_ctx Predicate Program Span Trace Trait_lang
