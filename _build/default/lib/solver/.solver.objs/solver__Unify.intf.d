lib/solver/unify.mli: Infer_ctx Pretty Region Stdlib Trait_lang Ty
