lib/solver/infer_ctx.mli: Decl Predicate Program Subst Trait_lang Ty
