lib/solver/trace.ml: Decl List Path Predicate Res Span Trait_lang Unify
