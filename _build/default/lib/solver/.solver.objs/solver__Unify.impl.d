lib/solver/unify.ml: Infer_ctx List Path Pretty Printf Region Result Stdlib String Trait_lang Ty
