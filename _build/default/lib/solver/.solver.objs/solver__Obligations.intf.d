lib/solver/obligations.mli: Predicate Program Res Solve Trace Trait_lang
