lib/solver/res.mli: Format
