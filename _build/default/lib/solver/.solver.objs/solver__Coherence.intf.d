lib/solver/coherence.mli: Decl Infer_ctx Path Program Solve Trace Trait_lang Ty
