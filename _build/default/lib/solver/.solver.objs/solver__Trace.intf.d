lib/solver/trace.mli: Decl Path Predicate Res Span Trait_lang Unify
