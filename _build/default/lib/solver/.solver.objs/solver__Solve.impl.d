lib/solver/solve.ml: Decl Hashtbl Infer_ctx List Option Path Predicate Pretty Program Res Result Span Subst Trace Trait_lang Ty Unify
