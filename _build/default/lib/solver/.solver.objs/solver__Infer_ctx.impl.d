lib/solver/infer_ctx.ml: Array List Predicate Program Region Subst Trait_lang Ty
