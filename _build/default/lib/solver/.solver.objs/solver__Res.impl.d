lib/solver/res.ml: Fmt List
