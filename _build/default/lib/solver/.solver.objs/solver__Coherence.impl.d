lib/solver/coherence.ml: Array Decl Infer_ctx List Option Path Predicate Printf Program Res Solve Subst Trace Trait_lang Ty Unify
