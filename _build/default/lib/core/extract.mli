(** Extraction: turning raw solver traces into the idealized tree.

    §4 of the paper identifies three gaps between the trait solver's
    output and "the beautiful AND/OR tree" of Fig. 5; this module bridges
    each: predicate-snapshot deduplication (the implication heuristic),
    speculative-predicate pruning, and stateful-node marking. *)

(** One-sided matching: does [general] become [specific] under some
    assignment of [general]'s inference variables?  The implication
    heuristic: an obligation snapshot [specific] supersedes the
    less-inferred snapshot [general]. *)
val generalizes :
  general:Trait_lang.Predicate.t -> specific:Trait_lang.Predicate.t -> bool

(** Apply the implication heuristic over a goal's evolution (oldest
    first): drop every attempt that a *later* attempt instantiates. *)
val dedup_attempts : Solver.Trace.goal_node list -> Solver.Trace.goal_node list

(** Drop failed speculative siblings when another goal at the same level
    succeeded. *)
val prune_speculative : Solver.Trace.goal_node list -> Solver.Trace.goal_node list

(** Lower a single trace tree into the arena representation. *)
val of_trace : Solver.Trace.goal_node -> Proof_tree.t

(** Extract the authoritative idealized tree for a goal report: snapshot
    dedup first, then the last surviving attempt. *)
val of_report : Solver.Obligations.goal_report -> Proof_tree.t

(** Extract the trees worth showing from a method-resolution probe
    ({!Solver.Solve.solve_probe}): failed speculative attempts are
    dropped when an alternative succeeded (§4). *)
val of_probe : Solver.Trace.goal_node list -> Proof_tree.t list
