(** Ranking heuristics for the bottom-up view, including the two
    baselines inertia is compared against in §5.2 (Fig. 12a). *)

type ranker = {
  name : string;
  rank : Proof_tree.t -> Proof_tree.node list;
      (** failing leaves in display order *)
}

(** Deepest failing predicate first — the intuition behind rustc
    reporting the deepest failed bound. *)
val by_depth : ranker

(** Fewest uninstantiated inference variables first. *)
val by_infer_vars : ranker

(** {!Inertia.sorted_leaves}. *)
val by_inertia : ranker

(** Plain tree order — the null ranking. *)
val unsorted : ranker

(** [ [by_inertia; by_depth; by_infer_vars] ] — the Fig. 12a lineup. *)
val all : ranker list

(** The index at which a ranker places the ground-truth root cause;
    [None] if absent from the failing leaves.  Optimal is 0 (§5.2.1). *)
val rank_of_root_cause :
  ranker -> Proof_tree.t -> root_cause:Trait_lang.Predicate.t -> int option
