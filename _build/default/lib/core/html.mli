(** A standalone HTML embedding of the Argus view (§3.2: "... can also be
    embedded in other contexts, such as in an online textbook").
    CollapseSeq becomes [<details>] disclosure, ShortTys a hover tooltip
    of fully-qualified paths, CtxtLinks footnoted source locations. *)

val escape : string -> string

(** One node's row markup (without disclosure structure). *)
val node_label : ?program:Trait_lang.Program.t -> View_state.t -> Proof_tree.node -> string

(** Render one view in its current direction and expansion state. *)
val view_to_html : ?program:Trait_lang.Program.t -> View_state.t -> string

(** A complete standalone page: the compiler diagnostic (if any) followed
    by both Argus views with their first levels pre-expanded. *)
val page :
  ?title:string ->
  program:Trait_lang.Program.t ->
  diagnostic:string option ->
  Proof_tree.t ->
  string
