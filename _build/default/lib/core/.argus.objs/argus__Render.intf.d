lib/core/render.mli: Heuristics Proof_tree View_state
