lib/core/view_state.ml: Ctxlinks Heuristics Int List Proof_tree Set Trait_lang
