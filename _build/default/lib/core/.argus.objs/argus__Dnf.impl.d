lib/core/dnf.ml: Fmt Formula Int List
