lib/core/extract.ml: Hashtbl List Path Predicate Proof_tree Solver String Trait_lang Ty
