lib/core/proof_tree.ml: Array Hashtbl List Option Predicate Solver Trait_lang
