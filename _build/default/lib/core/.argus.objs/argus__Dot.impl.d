lib/core/dot.ml: Buffer Pretty Printf Proof_tree Solver String Trait_lang
