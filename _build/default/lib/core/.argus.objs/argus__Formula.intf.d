lib/core/formula.mli: Format Proof_tree Trait_lang
