lib/core/inertia.ml: Dnf Formula Hashtbl Int List Path Predicate Proof_tree Trait_lang Ty
