lib/core/heuristics.mli: Proof_tree Trait_lang
