lib/core/html.mli: Proof_tree Trait_lang View_state
