lib/core/render.ml: Heuristics List Pretty Printf Proof_tree Solver String Trait_lang View_state
