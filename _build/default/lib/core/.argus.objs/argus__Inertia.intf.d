lib/core/inertia.mli: Path Predicate Proof_tree Trait_lang Ty
