lib/core/extract.mli: Proof_tree Solver Trait_lang
