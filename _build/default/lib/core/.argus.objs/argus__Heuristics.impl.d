lib/core/heuristics.ml: Inertia Int List Predicate Proof_tree Trait_lang
