lib/core/ctxlinks.ml: Decl List Option Path Predicate Pretty Program Proof_tree Solver Span String Trait_lang Ty
