lib/core/synthetic.ml: Decl Path Predicate Printf Proof_tree Solver Span Trait_lang Ty
