lib/core/proof_tree.mli: Predicate Solver Trait_lang
