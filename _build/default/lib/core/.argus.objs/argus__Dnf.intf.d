lib/core/dnf.mli: Format Formula
