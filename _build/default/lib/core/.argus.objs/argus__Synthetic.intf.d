lib/core/synthetic.mli: Proof_tree
