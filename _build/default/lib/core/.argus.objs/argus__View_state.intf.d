lib/core/view_state.mli: Heuristics Int Proof_tree Set Trait_lang
