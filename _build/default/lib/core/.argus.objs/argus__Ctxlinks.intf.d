lib/core/ctxlinks.mli: Path Predicate Program Proof_tree Span Trait_lang Ty
