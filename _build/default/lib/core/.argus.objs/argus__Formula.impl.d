lib/core/formula.ml: Fmt Hashtbl List Predicate Pretty Proof_tree Solver Trait_lang
