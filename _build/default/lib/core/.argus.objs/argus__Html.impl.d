lib/core/html.ml: Buffer Ctxlinks List Option Pretty Printf Program Proof_tree Solver Span String Trait_lang View_state
