(** Disjunctive-normal-form normalization of failure formulas.

    Each conjunct of the DNF is a *minimum correction subset* (MCS): a
    set of failing predicates that, if they held, would make the root
    obligation provable (§3.3).  Normalization is the exponential step
    whose cost Fig. 12b measures; deduplication and absorption keep it
    tractable on realistic trees and make every conjunct minimal. *)

(** A conjunct: a sorted, deduplicated list of variable ids. *)
type conjunct = int list

(** A DNF.  [[]] is unsatisfiable; [[[]]] is trivially true. *)
type t = conjunct list

val conj_union : conjunct -> conjunct -> conjunct
val conj_subset : conjunct -> conjunct -> bool

(** Drop duplicate and absorbed (superset) conjuncts. *)
val minimize : t -> t

(** Cross product (conjunction) of two DNFs. *)
val cross : t -> t -> t

type config = { minimize_eagerly : bool }

val default_config : config

(** Normalize a formula.  With [minimize_eagerly] off (the ablation
    bench), absorption runs only once at the end. *)
val of_formula : ?cfg:config -> Formula.t -> t

val eval : (int -> bool) -> t -> bool
val num_conjuncts : t -> int
val pp : Format.formatter -> t -> unit
