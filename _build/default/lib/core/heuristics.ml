(** Ranking heuristics for the bottom-up view.

    §5.2 compares inertia against two simpler baselines over the same set
    of failing leaves:
    - {b predicate depth} in the inference tree (deepest first — the
      intuition behind rustc reporting the deepest failed bound);
    - {b number of uninstantiated inference variables} in the predicate
      (fewest first — more-concrete predicates are more actionable).

    Each ranker returns the failing leaves in display order; the Fig. 12a
    metric is the index of the ground-truth root cause in that order. *)

open Trait_lang

type ranker = {
  name : string;
  rank : Proof_tree.t -> Proof_tree.node list;
}

let leaf_pred (n : Proof_tree.node) =
  match n.kind with
  | Proof_tree.Goal g -> g.pred
  | Proof_tree.Cand _ -> invalid_arg "leaf_pred: candidate node"

let by_depth : ranker =
  {
    name = "predicate depth";
    rank =
      (fun tree ->
        Proof_tree.failed_leaves tree
        |> List.stable_sort (fun (a : Proof_tree.node) (b : Proof_tree.node) ->
               match (a.kind, b.kind) with
               | Proof_tree.Goal ga, Proof_tree.Goal gb -> Int.compare gb.depth ga.depth
               | _ -> 0));
  }

let by_infer_vars : ranker =
  {
    name = "inference variables";
    rank =
      (fun tree ->
        Proof_tree.failed_leaves tree
        |> List.stable_sort (fun a b ->
               Int.compare
                 (List.length (Predicate.infer_vars (leaf_pred a)))
                 (List.length (Predicate.infer_vars (leaf_pred b)))));
  }

let by_inertia : ranker = { name = "inertia"; rank = Inertia.sorted_leaves }

(** Leaves in plain tree order — the null ranking. *)
let unsorted : ranker = { name = "unsorted"; rank = Proof_tree.failed_leaves }

let all = [ by_inertia; by_depth; by_infer_vars ]

(** The index at which [ranker] places the ground-truth root cause
    (matched on predicate equality); [None] if the predicate is not among
    the failing leaves.  Optimal is 0 (§5.2.1). *)
let rank_of_root_cause (r : ranker) (tree : Proof_tree.t) ~(root_cause : Predicate.t) :
    int option =
  let ranked = r.rank tree in
  let matches (n : Proof_tree.node) = Predicate.equal (leaf_pred n) root_cause in
  let rec idx i = function
    | [] -> None
    | n :: rest -> if matches n then Some i else idx (i + 1) rest
  in
  idx 0 ranked
