(** Synthetic inference trees for performance evaluation (Fig. 12b).

    Generated trees follow the structure of real inference trees: a
    sparse failing skeleton inside a large, mostly-successful body, with
    the skeleton growing with the target size.  Generation is
    deterministic. *)

type config = {
  target_goals : int;  (** approximate number of goal nodes *)
  failure_depth : int;  (** depth of the failing skeleton *)
  or_every : int;  (** an extra failing branch every n levels *)
}

val config_of_size : int -> config
val generate : config -> Proof_tree.t

(** A tree with roughly [n] goal nodes. *)
val of_size : int -> Proof_tree.t
