(** CtxtLinks (§3.2.3): auxiliary information accessible on demand.

    The inference tree shows only trait bounds and impl blocks; source
    locations, definition paths, and trait-implementor listings are
    resolved here when the user asks (command-click, hover, or the impl
    button in Fig. 8b). *)

open Trait_lang

(** Every definition path mentioned by a type, outermost first. *)
let paths_of_ty (ty : Ty.t) : Path.t list =
  Ty.fold
    (fun acc t ->
      match (t : Ty.t) with
      | Ctor (p, _) | FnItem (p, _, _) -> p :: acc
      | Dynamic tr -> tr.trait :: acc
      | Proj pr -> pr.proj_trait.trait :: acc
      | _ -> acc)
    [] ty
  |> List.rev

let paths_of_predicate (p : Predicate.t) : Path.t list =
  let tys =
    Predicate.fold_tys
      (fun acc t ->
        match (t : Ty.t) with
        | Ctor (p, _) | FnItem (p, _, _) -> p :: acc
        | Dynamic tr -> tr.trait :: acc
        | _ -> acc)
      [] p
    |> List.rev
  in
  let trait_ = Option.to_list (Predicate.trait_path p) in
  trait_ @ tys

let paths_of_node (n : Proof_tree.node) : Path.t list =
  match n.kind with
  | Proof_tree.Goal g -> paths_of_predicate g.pred
  | Proof_tree.Cand c -> (
      match c.source with
      | Solver.Trace.Cand_impl impl ->
          impl.impl_trait.trait :: paths_of_ty impl.impl_self
      | Solver.Trace.Cand_param_env p -> paths_of_predicate p
      | Solver.Trace.Cand_builtin _ -> [])

(** Hover minibuffer: deduplicated fully-qualified paths (Fig. 7a). *)
let definition_paths (n : Proof_tree.node) : string list =
  paths_of_node n
  |> List.map (fun p -> Path.to_string ~explicit_crate:true p)
  |> List.sort_uniq String.compare

(** A jump target: a symbol the user can command-click, with the span of
    its definition. *)
type jump = { symbol : Path.t; target : Span.t }

let jump_targets (program : Program.t) (n : Proof_tree.node) : jump list =
  paths_of_node n
  |> List.filter_map (fun p ->
         let span =
           match Program.find_type program p with
           | Some d -> Some d.ty_span
           | None -> (
               match Program.find_trait program p with
               | Some d -> Some d.tr_span
               | None -> Option.map (fun (f : Decl.fndecl) -> f.fn_span) (Program.find_fn program p))
         in
         Option.map (fun target -> { symbol = p; target }) span)

(** The impl-listing popup (Fig. 8b): every impl block of a trait,
    rendered as headers. *)
let impls_of_trait (program : Program.t) (trait_ : Path.t) : string list =
  Program.impls_of_trait program trait_
  |> List.map (fun i -> Pretty.impl ~cfg:Pretty.expanded i)

(** The span backing a node, if any: the goal's origin for roots, the
    impl block for impl candidates and where-clause subgoals. *)
let span_of_node (program : Program.t) (n : Proof_tree.node) : Span.t option =
  match n.kind with
  | Proof_tree.Cand c -> (
      match c.source with
      | Solver.Trace.Cand_impl impl -> Some impl.impl_span
      | _ -> None)
  | Proof_tree.Goal g -> (
      match g.provenance with
      | Solver.Trace.Root { span; _ } -> Some span
      | Solver.Trace.Impl_where { impl_id; _ } ->
          Option.map
            (fun (i : Decl.impl) -> i.impl_span)
            (Program.find_impl program impl_id)
      | Solver.Trace.Supertrait p ->
          Option.map (fun (t : Decl.trdecl) -> t.tr_span) (Program.find_trait program p)
      | Solver.Trace.Param_env _ | Solver.Trace.Builtin_req _ | Solver.Trace.Normalization ->
          None)
