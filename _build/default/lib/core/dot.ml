(** GraphViz (DOT) rendering of inference trees — the node-link "10,000
    foot view" the paper discusses in §3.2.4.

    The paper chose a nesting-based representation for user-space
    debugging but notes a high-level view could serve "e.g., helping Rust
    compiler developers design and debug the trait system itself"; this
    module provides that view.  Goals render as boxes (coloured by
    result), candidates as smaller ellipses labelled with their impl
    header; the paper's own diagrams (Fig. 3c, Fig. 4c) use exactly this
    shape. *)

open Trait_lang

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let result_color = function
  | Solver.Res.Yes -> "#1a7f37"
  | Solver.Res.No -> "#cf222e"
  | Solver.Res.Maybe -> "#9a6700"

(** Abbreviate long labels so the graph stays readable. *)
let clip ?(max = 60) s = if String.length s <= max then s else String.sub s 0 (max - 1) ^ "…"

type options = {
  show_successes : bool;  (** include proven subtrees (off keeps Fig-4c-sized graphs) *)
  max_label : int;
}

let default_options = { show_successes = true; max_label = 60 }

let node_attrs ?(opts = default_options) (n : Proof_tree.node) : string =
  match n.kind with
  | Proof_tree.Goal g ->
      let label =
        clip ~max:opts.max_label (Pretty.predicate g.pred)
        ^ (if g.is_overflow then "\n(overflow)" else "")
      in
      Printf.sprintf "label=\"%s\", shape=box, color=\"%s\", fontcolor=\"%s\""
        (escape label) (result_color g.result) (result_color g.result)
  | Proof_tree.Cand c ->
      let label =
        match c.source with
        | Solver.Trace.Cand_impl impl -> clip ~max:opts.max_label (Pretty.impl_header impl)
        | Solver.Trace.Cand_param_env p ->
            clip ~max:opts.max_label ("where " ^ Pretty.predicate p)
        | Solver.Trace.Cand_builtin b -> "builtin " ^ b
      in
      Printf.sprintf
        "label=\"%s\", shape=ellipse, style=dashed, color=\"%s\", fontcolor=\"#57606a\", fontsize=10"
        (escape label) (result_color c.cand_result)

(** Render the tree as a [digraph]. *)
let of_tree ?(opts = default_options) ?(name = "argus") (tree : Proof_tree.t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=TB;\n  node [fontname=\"monospace\", fontsize=11];\n";
  Buffer.add_string buf "  edge [color=\"#8c959f\"];\n";
  let visible (n : Proof_tree.node) =
    opts.show_successes || Proof_tree.is_failed n
  in
  Proof_tree.fold
    (fun () (n : Proof_tree.node) ->
      if visible n then begin
        Buffer.add_string buf (Printf.sprintf "  n%d [%s];\n" n.id (node_attrs ~opts n));
        match n.parent with
        | Some p when visible (Proof_tree.node tree p) ->
            Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" p n.id)
        | _ -> ()
      end)
    () tree;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
