(** Propositional failure formulas over failing predicates (§3.3).

    The AND/OR tree of a failed goal becomes a formula whose variables
    are the innermost failing predicates; the formula is satisfied
    exactly when the root obligation would become provable. *)

type t = True | False | Var of int | And of t list | Or of t list

(** Predicate interner: the same obligation appearing at several tree
    nodes (e.g. around a cycle) is a single variable. *)
type interner

val interner : unit -> interner
val intern : interner -> Trait_lang.Predicate.t -> Proof_tree.node_id -> int

(** The predicate behind a variable. *)
val var_predicate : interner -> int -> Trait_lang.Predicate.t

(** The first tree node carrying a variable's predicate. *)
val var_node : interner -> int -> Proof_tree.node_id

val num_vars : interner -> int

(** Build the failure formula of a tree, with its interner. *)
val of_tree : Proof_tree.t -> t * interner

val eval : (int -> bool) -> t -> bool
val vars : t -> int list
val size : t -> int
val pp : Format.formatter -> t -> unit
