(** The inertia heuristic (§3.3, Appendix A.1): ranking failing
    predicates by the expected complexity of the patch that fixes them.
    The categories and weights are a verbatim port of the paper's Rust
    [GoalKind] enum. *)

open Trait_lang

type location = Local | External

type goal_kind =
  | Trait of { self_ : location; trait_ : location }
      (** an ordinary trait bound; cost depends on the orphan rule *)
  | TyChange  (** a type must change (e.g. an associated-type mismatch) *)
  | FnToTrait of { trait_ : location; arity : int }
      (** a function item/pointer must implement a non-[Fn] trait *)
  | TyAsCallable of { arity : int }  (** a non-function used where [Fn] is required *)
  | DeleteFnParams of { delta : int }
  | AddFnParams of { delta : int }
  | IncorrectParams of { arity : int }
  | Misc

(** Appendix A.1's [GoalKind::weight], transcribed: 0 / 1 / 2 / 4 /
    5·delta / 4+5·arity / 50. *)
val weight : goal_kind -> int

val location_of_crate : Path.crate -> location
val location_of_ty : Ty.t -> location

(** Classify a failing predicate into one of the eight categories, from
    its structure alone (§3.3). *)
val classify : Predicate.t -> goal_kind

(** [weight (classify p)]. *)
val score : Predicate.t -> int

(** {1 The Fig. 10 pipeline: tree → MCS → classify → weight → sort} *)

type scored_set = {
  predicates : (Predicate.t * Proof_tree.node_id * goal_kind * int) list;
  total : int;  (** the conjunct's score: sum of predicate scores *)
}

type ranking = {
  sets : scored_set list;  (** MCSes, cheapest first *)
  leaves : (Proof_tree.node_id * int) list;
      (** every failing leaf with its display order key *)
}

val rank : Proof_tree.t -> ranking

(** The bottom-up ordering of failing leaf nodes under inertia; leaves
    appearing in no MCS are appended in tree order. *)
val sorted_leaves : Proof_tree.t -> Proof_tree.node list
