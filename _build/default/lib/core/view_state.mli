(** The pure state machine behind the Argus interface (§3.2).

    The paper's four interface principles are interaction semantics over
    the proof tree; this module implements them front-end-agnostically.
    The terminal renderer ({!Render}), the HTML embedding ({!Html}), and
    the interactive CLI all drive this same state.

    - CollapseSeq: [expanded] tracks which nodes are unfolded.
    - ShortTys: types render shortened by default; per-node ellipsis
      expansion and the fully-qualified-paths toggle live here.
    - CtxtLinks: [hovered] selects the node whose definition paths appear
      in the minibuffer.
    - TreeData: [direction] chooses the bottom-up or top-down projection;
      bottom-up roots are ordered by [ranker]. *)

type direction = Bottom_up | Top_down

type t = {
  tree : Proof_tree.t;
  direction : direction;
  expanded : Set.Make(Int).t;
  ty_expanded : Set.Make(Int).t;
  show_paths : bool;
  show_all_predicates : bool;  (** the §4 internal-predicate toggle *)
  hovered : Proof_tree.node_id option;
  ranker : Heuristics.ranker;
  others_threshold : int;
      (** bottom-up roots beyond this rank fold under "Other failures ..."
          (Fig. 9a) *)
  others_expanded : bool;
}

val create :
  ?direction:direction ->
  ?ranker:Heuristics.ranker ->
  ?others_threshold:int ->
  Proof_tree.t ->
  t

(** {1 CollapseSeq} *)

val is_expanded : t -> Proof_tree.node_id -> bool
val toggle_expand : t -> Proof_tree.node_id -> t
val expand : t -> Proof_tree.node_id -> t
val collapse : t -> Proof_tree.node_id -> t
val expand_all : t -> t
val collapse_all : t -> t

(** Unfold / fold the "Other failures ..." group of the bottom-up view. *)
val toggle_others : t -> t

(** {1 TreeData} *)

val set_direction : t -> direction -> t
val set_ranker : t -> Heuristics.ranker -> t

(** {1 ShortTys} *)

val is_ty_expanded : t -> Proof_tree.node_id -> bool

(** Click an ellipsis: reveal the node's hidden generic arguments. *)
val toggle_ty_expand : t -> Proof_tree.node_id -> t

val toggle_paths : t -> t
val toggle_all_predicates : t -> t

(** The pretty-printer configuration a node renders under. *)
val pretty_config : t -> Proof_tree.node_id -> Trait_lang.Pretty.config

(** {1 CtxtLinks} *)

val hover : t -> Proof_tree.node_id -> t
val unhover : t -> t

(** Minibuffer content for the hovered node: fully-qualified definition
    paths (Fig. 7a). *)
val minibuffer : t -> string list

(** {1 Projections} *)

(** Should this node be shown at all?  Stateful normalization nodes and
    compiler-internal predicates are hidden unless toggled (§4). *)
val node_visible : t -> Proof_tree.node -> bool

(** Visible children in the current direction: tree children for
    top-down, the parent chain for bottom-up; hidden nodes are spliced
    through. *)
val visible_children : t -> Proof_tree.node -> Proof_tree.node list

(** The roots of the current view: the tree root for top-down, the
    ranked failing leaves for bottom-up (before the Other-failures
    fold). *)
val roots : t -> Proof_tree.node list

(** Bottom-up roots split into (shown, folded behind "Other failures"). *)
val roots_split : t -> Proof_tree.node list * Proof_tree.node list
