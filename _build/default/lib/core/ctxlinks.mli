(** CtxtLinks (§3.2.3): auxiliary information accessible on demand —
    definition paths, jump-to-definition targets, and the trait
    implementor listing (Fig. 8b). *)

open Trait_lang

(** Every definition path mentioned by a type, outermost first. *)
val paths_of_ty : Ty.t -> Path.t list

val paths_of_predicate : Predicate.t -> Path.t list
val paths_of_node : Proof_tree.node -> Path.t list

(** Hover minibuffer: deduplicated fully-qualified paths (Fig. 7a). *)
val definition_paths : Proof_tree.node -> string list

(** A symbol the user can command-click, with its definition span. *)
type jump = { symbol : Path.t; target : Span.t }

val jump_targets : Program.t -> Proof_tree.node -> jump list

(** The impl-listing popup (Fig. 8b): every impl block of a trait. *)
val impls_of_trait : Program.t -> Path.t -> string list

(** The span backing a node: the goal's origin for roots, the impl block
    for impl candidates and where-clause subgoals. *)
val span_of_node : Program.t -> Proof_tree.node -> Span.t option
