lib/json/decode.mli: Json Path Predicate Trait_lang Ty
