lib/json/json.ml: Buffer Char Float List Printf String
