lib/json/json.mli:
