lib/json/decode.ml: Json List Path Predicate Printf Region String Trait_lang Ty
