lib/json/encode.ml: Argus Decl Json List Path Predicate Pretty Region Solver Span Trait_lang Ty
