lib/json/encode.mli: Argus Decl Json Path Predicate Region Solver Span Trait_lang Ty
