(** JSON encoders for the L_TRAIT type system, predicates, and extracted
    proof trees — the wire format an embedding UI consumes. *)

open Trait_lang

val path : Path.t -> Json.t
val span : Span.t -> Json.t
val region : Region.t -> Json.t
val ty : Ty.t -> Json.t
val arg : Ty.arg -> Json.t
val args : Ty.arg list -> Json.t
val trait_ref : Ty.trait_ref -> Json.t
val projection : Ty.projection -> Json.t
val predicate : Predicate.t -> Json.t
val res : Solver.Res.t -> Json.t
val impl : Decl.impl -> Json.t
val cand_source : Solver.Trace.cand_source -> Json.t

(** Nodes flattened in id order with parent/children links. *)
val proof_tree : Argus.Proof_tree.t -> Json.t

val goal_report : Solver.Obligations.goal_report -> Json.t
val report : Solver.Obligations.report -> Json.t
