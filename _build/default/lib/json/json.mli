(** A minimal JSON implementation: value type, printers, parser, and
    accessors.  Dependency-free (the sealed environment has no yojson);
    this plus {!Encode}/{!Decode} is the analog of the 40.6% of the Rust
    plugin that serializes the type system (§4). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape_string : string -> string

(** Compact single-line rendering. *)
val to_string : t -> string

(** 2-space-indented rendering. *)
val to_string_pretty : t -> string

exception Parse_error of string * int  (** message, byte offset *)

(** @raise Parse_error on malformed or trailing input. *)
val of_string : string -> t

val member : string -> t -> t option
val to_list_opt : t -> t list option
val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val equal : t -> t -> bool
