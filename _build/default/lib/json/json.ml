(** A minimal JSON implementation: value type, printer, and parser.

    The Argus compiler plugin devotes 40.6% of its code to "serializing
    the Rust type system to JSON" (§4); this module and {!Encode} are the
    OCaml analog, kept dependency-free since the sealed environment has no
    yojson. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write buf (String k);
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string (j : t) =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(** Pretty printer with 2-space indentation. *)
let to_string_pretty (j : t) =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go indent = function
    | (Null | Bool _ | Int _ | Float _ | String _) as v -> write buf v
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 1);
            go (indent + 1) x)
          xs;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 1);
            write buf (String k);
            Buffer.add_string buf ": ";
            go (indent + 1) v)
          fields;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Parse_error of string * int  (** message, byte offset *)

type parser_state = { src : string; mutable pos : int }

let peek_char ps = if ps.pos < String.length ps.src then Some ps.src.[ps.pos] else None

let fail ps msg = raise (Parse_error (msg, ps.pos))

let rec skip_ws ps =
  match peek_char ps with
  | Some (' ' | '\t' | '\n' | '\r') ->
      ps.pos <- ps.pos + 1;
      skip_ws ps
  | _ -> ()

let expect_char ps c =
  match peek_char ps with
  | Some c' when c' = c -> ps.pos <- ps.pos + 1
  | _ -> fail ps (Printf.sprintf "expected %C" c)

let parse_literal ps lit value =
  if
    ps.pos + String.length lit <= String.length ps.src
    && String.sub ps.src ps.pos (String.length lit) = lit
  then begin
    ps.pos <- ps.pos + String.length lit;
    value
  end
  else fail ps (Printf.sprintf "expected %s" lit)

let parse_string_body ps =
  expect_char ps '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek_char ps with
    | None -> fail ps "unterminated string"
    | Some '"' -> ps.pos <- ps.pos + 1
    | Some '\\' -> (
        ps.pos <- ps.pos + 1;
        match peek_char ps with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            ps.pos <- ps.pos + 1;
            loop ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            ps.pos <- ps.pos + 1;
            loop ()
        | Some 'r' ->
            Buffer.add_char buf '\r';
            ps.pos <- ps.pos + 1;
            loop ()
        | Some 'u' ->
            (* \uXXXX: decode BMP code points to UTF-8 *)
            ps.pos <- ps.pos + 1;
            if ps.pos + 4 > String.length ps.src then fail ps "bad \\u escape";
            let hex = String.sub ps.src ps.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail ps "bad \\u escape"
            in
            ps.pos <- ps.pos + 4;
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            loop ()
        | Some c ->
            Buffer.add_char buf c;
            ps.pos <- ps.pos + 1;
            loop ()
        | None -> fail ps "unterminated escape")
    | Some c ->
        Buffer.add_char buf c;
        ps.pos <- ps.pos + 1;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number ps =
  let start = ps.pos in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  while ps.pos < String.length ps.src && is_num_char ps.src.[ps.pos] do
    ps.pos <- ps.pos + 1
  done;
  let s = String.sub ps.src start (ps.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail ps "malformed number")

let rec parse_value ps : t =
  skip_ws ps;
  match peek_char ps with
  | None -> fail ps "unexpected end of input"
  | Some 'n' -> parse_literal ps "null" Null
  | Some 't' -> parse_literal ps "true" (Bool true)
  | Some 'f' -> parse_literal ps "false" (Bool false)
  | Some '"' -> String (parse_string_body ps)
  | Some '[' ->
      ps.pos <- ps.pos + 1;
      skip_ws ps;
      if peek_char ps = Some ']' then begin
        ps.pos <- ps.pos + 1;
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value ps in
          skip_ws ps;
          match peek_char ps with
          | Some ',' ->
              ps.pos <- ps.pos + 1;
              elems (v :: acc)
          | Some ']' ->
              ps.pos <- ps.pos + 1;
              List.rev (v :: acc)
          | _ -> fail ps "expected ',' or ']'"
        in
        List (elems [])
      end
  | Some '{' ->
      ps.pos <- ps.pos + 1;
      skip_ws ps;
      if peek_char ps = Some '}' then begin
        ps.pos <- ps.pos + 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ps;
          let k = parse_string_body ps in
          skip_ws ps;
          expect_char ps ':';
          let v = parse_value ps in
          skip_ws ps;
          match peek_char ps with
          | Some ',' ->
              ps.pos <- ps.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              ps.pos <- ps.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail ps "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some _ -> parse_number ps

let of_string (s : string) : t =
  let ps = { src = s; pos = 0 } in
  let v = parse_value ps in
  skip_ws ps;
  if ps.pos <> String.length s then fail ps "trailing input";
  v

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None

let equal (a : t) (b : t) = a = b
