(** The expression-level type checker — the process that *generates*
    trait obligations, reproducing §4's interleaving: generic calls
    instantiate fresh inference variables and emit their where-clauses as
    obligations; method calls speculatively probe every trait declaring
    the method; the collected obligations then run to fixpoint through
    {!Solver.Obligations}. *)

open Trait_lang

type type_error = { te_span : Span.t; te_message : string }

(** A recorded method resolution (§4's speculative predicates). *)
type probe = {
  p_span : Span.t;
  p_method : string;
  p_recv_ty : Ty.t;  (** resolved at the end of checking *)
  p_nodes : Solver.Trace.goal_node list;  (** one per probed trait *)
  p_chosen : int option;  (** index of the committed alternative *)
}

type fn_report = {
  fr_fn : Decl.fndecl;
  fr_locals : (string * Ty.t) list;  (** let-bound locals, resolved *)
  fr_type_errors : type_error list;
  fr_obligations : Solver.Obligations.goal_report list;
  fr_probes : probe list;
  fr_rounds : int;  (** fixpoint rounds the obligations needed *)
}

type report = { fr_fns : fn_report list }

val fn_ok : fn_report -> bool
val report_ok : report -> bool

(** Type-check one function body (params must be named). *)
val check_fn : ?cfg:Solver.Solve.config -> Program.t -> Decl.fndecl -> fn_report

(** Type-check every function declared with a body. *)
val check_program : ?cfg:Solver.Solve.config -> Program.t -> report
