lib/typeck/infer.mli: Decl Program Solver Span Trait_lang Ty
