lib/typeck/infer.ml: Decl Expr List Option Path Predicate Printf Program Solver Span Subst Trait_lang Ty
