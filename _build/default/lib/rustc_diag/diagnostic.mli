(** Rust-compiler-style textual diagnostics — the baseline Argus is
    evaluated against, reproducing the §2 information-losing heuristics:
    reporting the deepest failure but stopping at branch points, eliding
    the middle of long requirement chains, trimming paths possibly into
    ambiguity, and honoring [#[on_unimplemented]] messages. *)

open Trait_lang
open Argus

type t = {
  code : string;  (** "E0277" | "E0271" | "E0275" | "E0283" *)
  primary : string;
  span : Span.t;
  origin : string;  (** e.g. "the call to .load(conn)" *)
  notes : string list;  (** "required for …" chain, post-elision *)
  hidden : int;  (** count of elided chain entries *)
  reported : Proof_tree.node_id;  (** the node the headline talks about *)
  root_bound : string;
}

(** Walk from the root towards the deepest failure, stopping at branch
    points; deepest first. *)
val reported_chain : Proof_tree.t -> Proof_tree.node list

(** Produce the diagnostic for a failed root goal's tree. *)
val of_tree : Program.t -> Program.goal -> Proof_tree.t -> t

val to_string : t -> string

(** Fig. 12a metric: inference steps between the reported node and the
    ground-truth root cause; [None] if the predicate is not in the
    tree. *)
val distance_to_root_cause :
  Proof_tree.t -> t -> root_cause:Predicate.t -> int option
