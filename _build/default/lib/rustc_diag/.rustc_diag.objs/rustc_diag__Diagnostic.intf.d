lib/rustc_diag/diagnostic.mli: Argus Predicate Program Proof_tree Span Trait_lang
