lib/rustc_diag/diagnostic.ml: Argus Array Buffer List Option Predicate Pretty Printf Program Proof_tree Solver Span String Trait_lang
