(** The [brew] synthetic library (§5.1.1): potion recipes checked by
    traits, mirroring Diesel's associated-type-verdict design.

    Run with: [dune exec examples/brew_potion.exe]

    Demonstrates using the library API end to end: validate several
    recipes, debug the clashing one with the bottom-up view, and consult
    the affinity table through the CtxtLinks impl listing. *)

let try_recipe name source =
  Printf.printf "recipe: %s\n" name;
  let program = Trait_lang.Resolve.program_of_string ~file:"brew.rs" source in
  let report = Solver.Obligations.solve_program program in
  (match Solver.Obligations.errors report with
  | [] -> print_endline "  drinkable!"
  | r :: _ ->
      let tree = Argus.Extract.of_report r in
      print_endline "  rejected by the brewmaster; bottom-up root causes:";
      List.iter
        (fun (n : Argus.Proof_tree.node) ->
          match n.kind with
          | Argus.Proof_tree.Goal g ->
              Printf.printf "    ✗ %s\n" (Trait_lang.Pretty.predicate g.pred)
          | _ -> ())
        (Argus.Inertia.sorted_leaves tree));
  print_newline ()

let goal_for a b =
  Printf.sprintf
    "goal Potion<Recipe<Infusion<%s>, Infusion<%s>>>: Drinkable<Vial> from \"the call to .drink(vial)\";"
    a b

let () =
  let base = Corpus.Brew.prelude ^ Corpus.Brew.garden in
  try_recipe "sunflower + chamomile" (base ^ goal_for "Sunflower" "Chamomile");
  try_recipe "sunflower + nightshade (clash)" (base ^ goal_for "Sunflower" "Nightshade");
  try_recipe "nightshade + nightshade" (base ^ goal_for "Nightshade" "Nightshade");

  (* Consult the affinity table, as the Fig. 8b impl listing would. *)
  print_endline "the full affinity table (CtxtLinks impl listing):";
  let program = Trait_lang.Resolve.program_of_string ~file:"brew.rs"
      (base ^ goal_for "Sunflower" "Chamomile") in
  let affinity =
    match Trait_lang.Program.resolve_name program "Affinity" with
    | Ok p -> p
    | Error _ -> failwith "Affinity not found"
  in
  List.iter (fun s -> print_endline ("  " ^ s))
    (Argus.Ctxlinks.impls_of_trait program affinity)
