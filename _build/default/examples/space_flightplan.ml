(** The [space] synthetic library (§5.1.1): flight plans validated by
    traits, mirroring Bevy's marker-separated branch-point design.

    Run with: [dune exec examples/space_flightplan.exe]

    Demonstrates the interactive view-state machine programmatically —
    the exact sequence of interactions a user would perform in the IDE:
    open the bottom-up view, expand the top root cause, hover it for the
    definition paths (ShortTys minibuffer), toggle fully-qualified paths,
    and switch to the top-down view. *)

let show title vs =
  Printf.printf "--- %s ---\n" title;
  print_endline (Argus.Render.to_string vs);
  print_newline ()

let () =
  let entry = Option.get (Corpus.Suite.find "space-raw-payload") in
  Printf.printf "== %s ==\n%s\n\n" entry.title entry.description;
  let _program, tree = Corpus.Harness.failed_tree entry in

  (* 1. Argus opens on the collapsed bottom-up view. *)
  let vs = Argus.View_state.create tree in
  show "opening view (collapsed bottom-up, inertia-sorted)" vs;

  (* 2. Expand the first root cause to see which impl needed it. *)
  let first_row = List.hd (Argus.Render.view vs) in
  let vs = Argus.View_state.expand vs first_row.node in
  show "after expanding the top root cause (CollapseSeq)" vs;

  (* 3. Hover it: the minibuffer shows fully-qualified paths (Fig. 7a). *)
  let vs = Argus.View_state.hover vs first_row.node in
  show "hovering the root cause (ShortTys minibuffer)" vs;

  (* 4. Toggle fully-qualified paths everywhere. *)
  let vs = Argus.View_state.toggle_paths vs in
  show "with fully-qualified paths" vs;

  (* 5. The top-down view of the same tree. *)
  let vs = Argus.View_state.toggle_paths vs in
  let vs = Argus.View_state.set_direction vs Argus.View_state.Top_down in
  let vs = Argus.View_state.expand_all vs in
  show "top-down, fully expanded (TreeData)" vs;

  (* 6. The §4 toggle: reveal internal/stateful predicates. *)
  let vs = Argus.View_state.toggle_all_predicates vs in
  show "with compiler-internal predicates revealed" vs
