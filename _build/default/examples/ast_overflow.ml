(** §2.2 walkthrough: the accidental infinite recursion.

    Run with: [dune exec examples/ast_overflow.exe]

    Reproduces Fig. 3: the blanket [AstAssocs] impl requires
    [AssocData<Self>], whose impl requires [AstAssocs] again — an E0275
    overflow.  The compiler interleaves the cycle with source locations;
    Argus's CtxtLinks principle keeps the core cycle clean (Fig. 8a) and
    serves locations on demand. *)

let () =
  let entry = Option.get (Corpus.Suite.find "ast-overflow") in
  Printf.printf "== %s ==\n%s\n\n" entry.title entry.description;

  let program, tree = Corpus.Harness.failed_tree entry in
  let goal = List.hd (Trait_lang.Program.goals program) in

  print_endline "--- what rustc says (E0275, Fig. 3b) ---";
  print_string
    (Rustc_diag.Diagnostic.to_string (Rustc_diag.Diagnostic.of_tree program goal tree));
  print_newline ();

  print_endline "--- the clean cycle in the top-down view (Fig. 3c / 8a) ---";
  print_endline (Argus.Render.tree_to_string ~direction:Argus.View_state.Top_down tree);
  print_newline ();

  (* CtxtLinks: source locations on demand rather than interleaved. *)
  print_endline "--- source locations on demand (CtxtLinks) ---";
  Argus.Proof_tree.fold
    (fun () (n : Argus.Proof_tree.node) ->
      match Argus.Ctxlinks.span_of_node program n with
      | Some span ->
          let text =
            match n.kind with
            | Argus.Proof_tree.Goal g -> Trait_lang.Pretty.predicate g.pred
            | Argus.Proof_tree.Cand c -> (
                match c.source with
                | Solver.Trace.Cand_impl i -> Trait_lang.Pretty.impl_header i
                | _ -> "(builtin)")
          in
          Printf.printf "  %-55s -> %s\n" text (Trait_lang.Span.to_string span)
      | None -> ())
    () tree;
  print_newline ();

  (* The overflow marker is machine-visible too. *)
  let overflow_leaves =
    List.filter
      (fun (n : Argus.Proof_tree.node) ->
        match n.kind with Argus.Proof_tree.Goal g -> g.is_overflow | _ -> false)
      (Argus.Proof_tree.failed_goals tree)
  in
  Printf.printf "overflow nodes in the tree: %d\n\n" (List.length overflow_leaves);

  print_endline "--- after the fix (a concrete impl for EmptyNode) ---";
  let fixed =
    List.find (fun (e : Corpus.Harness.entry) -> e.id = "ast-fixed") Corpus.Suite.extras
  in
  let _, report = Corpus.Harness.solve fixed in
  Printf.printf "all goals proved: %b\n" (Solver.Obligations.all_proved report)
