(** Quickstart: the whole pipeline on a ten-line trait program.

    Run with: [dune exec examples/quickstart.exe]

    1. write an L_TRAIT program (a tiny serde-flavoured library);
    2. parse + resolve it;
    3. solve its goals to a fixpoint;
    4. extract the idealized inference tree;
    5. print the rustc-style baseline diagnostic and both Argus views;
    6. rank root-cause candidates with inertia. *)

let source =
  {|
extern crate serde {
  trait Serialize {}
}
struct Config;
struct Settings<T>;
struct Metadata;

impl Serialize for Config {}
impl<T> Serialize for Settings<T> where T: Serialize {}

// Metadata never implements Serialize: this goal fails.
goal Settings<(Config, Metadata)>: Serialize from "the call to to_json(&settings)";
|}

let () =
  (* 2. parse + resolve *)
  let program = Trait_lang.Resolve.program_of_string ~file:"quickstart.rs" source in
  Printf.printf "program has %d declarations and %d goal(s)\n\n"
    (Trait_lang.Program.decl_count program)
    (List.length (Trait_lang.Program.goals program));

  (* 3. solve *)
  let report = Solver.Obligations.solve_program program in
  List.iter
    (fun (r : Solver.Obligations.goal_report) ->
      Printf.printf "goal `%s` => %s\n"
        (Trait_lang.Pretty.predicate r.goal.goal_pred)
        (match r.status with
        | Solver.Obligations.Proved -> "proved"
        | Solver.Obligations.Disproved -> "trait error"
        | Solver.Obligations.Ambiguous -> "ambiguous"))
    report.reports;
  print_newline ();

  let failing = List.hd (Solver.Obligations.errors report) in

  (* 4. extract the idealized tree *)
  let tree = Argus.Extract.of_report failing in
  Printf.printf "inference tree: %d goal nodes, %d failing leaves\n\n"
    (Argus.Proof_tree.goal_count tree)
    (List.length (Argus.Proof_tree.failed_leaves tree));

  (* 5a. the baseline: what the compiler would say *)
  print_endline "--- rustc-style diagnostic (the baseline) ---";
  print_string
    (Rustc_diag.Diagnostic.to_string
       (Rustc_diag.Diagnostic.of_tree program failing.goal tree));
  print_newline ();

  (* 5b. the Argus views *)
  print_endline "--- Argus, bottom-up (root causes first) ---";
  print_endline (Argus.Render.tree_to_string ~direction:Argus.View_state.Bottom_up tree);
  print_newline ();
  print_endline "--- Argus, top-down (the logical story) ---";
  print_endline (Argus.Render.tree_to_string ~direction:Argus.View_state.Top_down tree);
  print_newline ();

  (* 6. inertia: what is cheapest to fix? *)
  print_endline "--- inertia ranking ---";
  let ranking = Argus.Inertia.rank tree in
  List.iter
    (fun (s : Argus.Inertia.scored_set) ->
      Printf.printf "fix set (score %d): %s\n" s.total
        (String.concat " AND "
           (List.map (fun (p, _, _, _) -> Trait_lang.Pretty.predicate p) s.predicates)))
    ranking.sets
