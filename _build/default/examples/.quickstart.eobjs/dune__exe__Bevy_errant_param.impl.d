examples/bevy_errant_param.ml: Argus Corpus List Option Printf Rustc_diag Solver Trait_lang
