examples/brew_potion.ml: Argus Corpus List Printf Solver Trait_lang
