examples/quickstart.mli:
