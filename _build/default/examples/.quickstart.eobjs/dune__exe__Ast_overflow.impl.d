examples/ast_overflow.ml: Argus Corpus List Option Printf Rustc_diag Solver Trait_lang
