examples/diesel_missing_join.ml: Argus Corpus List Option Printf Rustc_diag Solver Trait_lang
