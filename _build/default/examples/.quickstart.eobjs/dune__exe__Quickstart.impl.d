examples/quickstart.ml: Argus List Printf Rustc_diag Solver String Trait_lang
