examples/method_probing.ml: Argus List Path Predicate Pretty Printf Resolve Solver Trait_lang Ty
