examples/space_flightplan.mli:
