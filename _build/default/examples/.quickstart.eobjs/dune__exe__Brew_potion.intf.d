examples/brew_potion.mli:
