examples/ast_overflow.mli:
