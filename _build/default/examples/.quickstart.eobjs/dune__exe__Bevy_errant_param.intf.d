examples/bevy_errant_param.mli:
