examples/diesel_missing_join.mli:
