examples/method_probing.mli:
