examples/expression_typeck.ml: Argus List Path Pretty Printf Program Resolve Rustc_diag Solver Trait_lang Typeck
