examples/space_flightplan.ml: Argus Corpus List Option Printf
