examples/expression_typeck.mli:
