(** §4's speculative-predicate scenario: resolving [my_value.to_string()].

    Run with: [dune exec examples/method_probing.exe]

    "The type inference engine may ask the trait solver to evaluate
    [Vec<i32>: ToString], but this predicate is *speculative*.  If the
    predicate fails, the inference engine may ask the trait solver to
    evaluate [Vec<i32>: CustomToString].  The issue is that all
    predicates, regardless of whether they are soft or hard constraints,
    look identical to external compiler plugins."

    We drive the probe through {!Solver.Solve.solve_probe} and show what a
    naive plugin would display (every attempt, including the misleading
    failed one) versus what Argus's extraction heuristic keeps. *)

open Trait_lang

let source =
  {|
extern crate std {
  trait ToString {}
  trait CustomToString {}
  struct Vec<T>;
  impl ToString for i32 {}
  impl ToString for String {}
}
// the user's crate implements only the custom trait for Vec<i32>
impl CustomToString for Vec<i32> {}
|}

let () =
  let program = Resolve.program_of_string ~file:"probing.rs" source in
  let st = Solver.Solve.create program in

  let vec_i32 =
    Ty.ctor (Path.external_ "std" [ "Vec" ]) [ Ty.Int ]
  in
  let bound name crate =
    Predicate.trait_ vec_i32 (Ty.trait_ref (Path.v ~crate [ name ]))
  in
  (* method resolution probes the candidate traits in order *)
  let alternatives =
    [ bound "ToString" (Path.External "std"); bound "CustomToString" (Path.External "std") ]
  in
  let nodes, chosen =
    Solver.Solve.solve_probe st ~origin:"the call my_value.to_string()" alternatives
  in

  Printf.printf "probed %d alternatives; committed #%s\n\n" (List.length nodes)
    (match chosen with Some i -> string_of_int i | None -> "none");

  print_endline "--- what a naive plugin sees (every probed predicate) ---";
  List.iter
    (fun (n : Solver.Trace.goal_node) ->
      Printf.printf "  %s %s%s\n"
        (match n.result with Solver.Res.Yes -> "✓" | Solver.Res.No -> "✗" | _ -> "?")
        (Pretty.predicate n.pred)
        (if Solver.Trace.has_flag Solver.Trace.Speculative n then "   [speculative]" else ""))
    nodes;
  print_newline ();

  print_endline "--- what Argus shows after the §4 pruning heuristic ---";
  List.iter
    (fun tree -> print_endline (Argus.Render.tree_to_string ~direction:Argus.View_state.Top_down tree))
    (Argus.Extract.of_probe nodes);
  print_newline ();

  (* the same probe with no successful alternative: everything stays,
     because each failure may be the real error *)
  print_endline "--- probing a receiver with no matching trait at all ---";
  let unit_recv = Ty.Unit in
  let alt2 =
    [
      Predicate.trait_ unit_recv (Ty.trait_ref (Path.external_ "std" [ "ToString" ]));
      Predicate.trait_ unit_recv (Ty.trait_ref (Path.external_ "std" [ "CustomToString" ]));
    ]
  in
  let nodes2, chosen2 = Solver.Solve.solve_probe st alt2 in
  Printf.printf "committed: %s; trees shown: %d (all kept — no success to prune against)\n"
    (match chosen2 with Some i -> string_of_int i | None -> "none")
    (List.length (Argus.Extract.of_probe nodes2))
