(** §2.3 walkthrough: the errant function parameter.

    Run with: [dune exec examples/bevy_errant_param.exe]

    Reproduces Fig. 4 and Fig. 9/10: [run_timer] takes [Timer] instead of
    [ResMut<Timer>].  The compiler's diagnostic stops at the [IntoSystem]
    branch point and never mentions the actual culprit
    [Timer: SystemParam]; Argus's bottom-up view surfaces it first, and
    the inertia pipeline (tree → MCS → classify → weight → sort) explains
    why it outranks the alternative [{run_timer}: System]. *)

let () =
  let entry = Option.get (Corpus.Suite.find "bevy-errant-param") in
  Printf.printf "== %s ==\n%s\n\n" entry.title entry.description;

  let program, tree = Corpus.Harness.failed_tree entry in
  let goal = List.hd (Trait_lang.Program.goals program) in

  print_endline "--- what rustc says (stops at the branch point, Fig. 4b) ---";
  print_string
    (Rustc_diag.Diagnostic.to_string (Rustc_diag.Diagnostic.of_tree program goal tree));
  print_newline ();

  print_endline "--- the Argus top-down view shows the branch (Fig. 4c / 9b) ---";
  print_endline (Argus.Render.tree_to_string ~direction:Argus.View_state.Top_down tree);
  print_newline ();

  print_endline "--- the inertia pipeline (Fig. 10) ---";
  let ranking = Argus.Inertia.rank tree in
  List.iter
    (fun (s : Argus.Inertia.scored_set) ->
      List.iter
        (fun (p, _, kind, w) ->
          let kind_name =
            match (kind : Argus.Inertia.goal_kind) with
            | Argus.Inertia.Trait { self_; trait_ } ->
                Printf.sprintf "Trait { self: %s, trait: %s }"
                  (match self_ with Argus.Inertia.Local -> "local" | _ -> "external")
                  (match trait_ with Argus.Inertia.Local -> "local" | _ -> "external")
            | Argus.Inertia.FnToTrait { arity; _ } ->
                Printf.sprintf "FnToTrait { arity: %d }" arity
            | Argus.Inertia.TyChange -> "TyChange"
            | Argus.Inertia.TyAsCallable { arity } ->
                Printf.sprintf "TyAsCallable { arity: %d }" arity
            | Argus.Inertia.Misc -> "Misc"
            | _ -> "Params"
          in
          Printf.printf "  %-45s %-32s weight %d  (set total %d)\n"
            (Trait_lang.Pretty.predicate p) kind_name w s.total)
        s.predicates)
    ranking.sets;
  print_newline ();

  print_endline "--- the bottom-up view, sorted by inertia (Fig. 9a) ---";
  print_endline (Argus.Render.tree_to_string ~direction:Argus.View_state.Bottom_up tree);
  print_newline ();

  (* CtxtLinks: the Fig. 8b popup — all implementers of SystemParam. *)
  print_endline "--- CtxtLinks: implementers of SystemParam (Fig. 8b) ---";
  let rc = Corpus.Harness.root_cause_pred entry in
  (match Trait_lang.Predicate.trait_path rc with
  | Some t -> List.iter print_endline (Argus.Ctxlinks.impls_of_trait program t)
  | None -> ());
  print_newline ();

  print_endline "--- after the fix (ResMut<Timer>) ---";
  let fixed =
    List.find
      (fun (e : Corpus.Harness.entry) -> e.id = "bevy-correct-param")
      Corpus.Suite.extras
  in
  let _, report = Corpus.Harness.solve fixed in
  Printf.printf "all goals proved: %b\n" (Solver.Obligations.all_proved report)
