(** §2.1 walkthrough: the missing table join.

    Run with: [dune exec examples/diesel_missing_join.exe]

    Reproduces Fig. 2: the query selects [posts::id] without joining
    [posts], Diesel's trait machinery rejects [.load(conn)], and the
    compiler-style diagnostic elides the most informative bound
    ("N redundant requirements hidden").  Argus's CollapseSeq principle
    instead lets the developer unfold the chain step by step — shown here
    by progressively expanding the bottom-up view. *)

let () =
  let entry = Option.get (Corpus.Suite.find "diesel-missing-join") in
  Printf.printf "== %s ==\n%s\n\n" entry.title entry.description;

  let program, tree = Corpus.Harness.failed_tree entry in
  let goal = List.hd (Trait_lang.Program.goals program) in

  (* The baseline diagnostic, with its elision (Fig. 2b). *)
  print_endline "--- what rustc says ---";
  let diag = Rustc_diag.Diagnostic.of_tree program goal tree in
  print_string (Rustc_diag.Diagnostic.to_string diag);
  Printf.printf "(%d requirements were hidden by the diagnostic)\n\n" diag.hidden;

  (* CollapseSeq: start collapsed, unfold one level at a time. *)
  print_endline "--- Argus bottom-up, unfolding step by step (CollapseSeq) ---";
  let vs = Argus.View_state.create tree in
  let show vs =
    List.iter
      (fun (l : Argus.Render.line) -> print_endline (Argus.Render.line_to_string l))
      (Argus.Render.view vs);
    print_newline ()
  in
  show vs;
  (* expand the first root twice, following the chain upward *)
  let expand_first vs =
    match Argus.Render.view vs with
    | [] -> vs
    | lines ->
        let last = List.nth lines (List.length lines - 1) in
        Argus.View_state.expand vs last.node
  in
  let vs = expand_first vs in
  show vs;
  let vs = expand_first vs in
  show vs;

  (* ShortTys: the same predicate, short vs fully qualified. *)
  print_endline "--- ShortTys: default vs fully-qualified ---";
  let rc = Corpus.Harness.root_cause_pred entry in
  Printf.printf "short:     %s\n" (Trait_lang.Pretty.predicate rc);
  Printf.printf "qualified: %s\n\n"
    (Trait_lang.Pretty.predicate ~cfg:Trait_lang.Pretty.verbose rc);

  (* The fix: the same query over an inner join type-checks. *)
  print_endline "--- after the fix (.inner_join(posts::table)) ---";
  let fixed = Option.get (List.find_opt (fun (e : Corpus.Harness.entry) -> e.id = "diesel-with-join") Corpus.Suite.extras) in
  let _, report = Corpus.Harness.solve fixed in
  Printf.printf "all goals proved: %b\n" (Solver.Obligations.all_proved report)
